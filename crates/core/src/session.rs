//! The unified streaming explanation API: [`Session`] → [`ExplainRequest`]
//! → [`SolutionStream`].
//!
//! The paper's §5.1 interactivity argument is that conditional instances
//! are useful *as they arrive* — time-to-first-instance, not batch
//! completion, is what makes explanations usable. A [`Session`] packages
//! everything a service keeps between requests (the schema, a tuned
//! [`ChaseConfig`], and warm solver caches), and [`Session::explain`]
//! returns a [`SolutionStream`] that yields [`AcceptedInstance`]s while the
//! chase is still driving, in the same deterministic order as the batch
//! API under any thread budget.
//!
//! ```
//! use std::sync::Arc;
//! use cqi_schema::{DomainType, Schema};
//! use cqi_core::{ExplainRequest, Session};
//!
//! let schema = Arc::new(
//!     Schema::builder()
//!         .relation("Likes", &[("drinker", DomainType::Text), ("beer", DomainType::Text)])
//!         .build()
//!         .unwrap(),
//! );
//! let session = Session::new(schema);
//! let stream = session
//!     .explain(ExplainRequest::drc("{ (b1) | exists d1 (Likes(d1, b1)) }").limit(4))
//!     .unwrap();
//! let mut n = 0;
//! let sol = {
//!     let mut stream = stream;
//!     for accepted in stream.by_ref() {
//!         n += 1;
//!         assert!(accepted.inst.size() <= 4);
//!     }
//!     stream.collect()
//! };
//! // The stream yields every accepted instance that satisfies the
//! // *original* tree; under conjunctive variants a few raw accepts can
//! // fail that re-check, so `n <= raw_accepted` in general.
//! assert!(n >= sol.instances.len() && n <= sol.raw_accepted);
//! assert!(sol.interrupted.is_none());
//! ```
//!
//! ## Migration from `run_variant`
//!
//! [`run_variant`](crate::run_variant) still exists and behaves exactly as
//! before — it is now a thin wrapper over a one-shot session. The mapping:
//!
//! | before | after |
//! |---|---|
//! | `run_variant(&tree, v, &cfg)` | `session.explain_collect(ExplainRequest::tree(&tree).variant(v))` |
//! | `parse_query` vs `sql_to_drc` per front-end | `ExplainRequest::drc(src)` / `ExplainRequest::sql(src)` |
//! | `cfg.timeout` + `timed_out: bool` | `req.deadline(d)` + `CSolution::interrupted` |
//! | no cancellation | `req.cancel(token)` / `SolutionStream::cancel()` |
//! | results at drive end | `SolutionStream` yields during the drive |

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cqi_drc::{parse_query, QueryError, SyntaxTree};
use cqi_schema::Schema;
use cqi_sql::sql_to_drc;

use crate::chase::ChaseCaches;
use crate::config::{CancelToken, ChaseConfig, Variant};
use crate::solution::{AcceptedInstance, CSolution};
use crate::variants::{run_variant_batch, run_variant_observed};

/// A query in any of the supported front-ends. `Drc`/`Sql` sources are
/// compiled against the session's schema; a pre-parsed [`SyntaxTree`]
/// carries its own.
#[derive(Clone, Copy, Debug)]
pub enum QueryInput<'q> {
    /// DRC text syntax (`{ (b1) | exists d1 (Likes(d1, b1)) }`).
    Drc(&'q str),
    /// SQL (`SELECT l.beer FROM Likes l`, including `JOIN ... ON`,
    /// `EXISTS`/`NOT EXISTS`, and `EXCEPT`).
    Sql(&'q str),
    /// A pre-parsed syntax tree (no compilation step).
    Tree(&'q SyntaxTree),
}

/// One explanation request: a query (in any front-end), an algorithm
/// variant, and per-request overrides of the session's tuning. Built
/// fluently:
///
/// ```ignore
/// ExplainRequest::sql("SELECT l.beer FROM Likes l")
///     .variant(Variant::ConjAdd)
///     .limit(8)
///     .deadline(Duration::from_secs(2))
///     .cancel(token)
/// ```
#[derive(Clone, Debug)]
pub struct ExplainRequest<'q> {
    input: QueryInput<'q>,
    variant: Variant,
    limit: Option<usize>,
    deadline: Option<Duration>,
    max_results: Option<usize>,
    threads: Option<usize>,
    cancel: Option<CancelToken>,
    trace: Option<bool>,
    deepening: Option<(usize, usize)>,
}

impl<'q> ExplainRequest<'q> {
    pub fn new(input: QueryInput<'q>) -> ExplainRequest<'q> {
        ExplainRequest {
            input,
            variant: Variant::ConjAdd,
            limit: None,
            deadline: None,
            max_results: None,
            threads: None,
            cancel: None,
            trace: None,
            deepening: None,
        }
    }

    pub fn drc(src: &'q str) -> ExplainRequest<'q> {
        ExplainRequest::new(QueryInput::Drc(src))
    }

    pub fn sql(src: &'q str) -> ExplainRequest<'q> {
        ExplainRequest::new(QueryInput::Sql(src))
    }

    pub fn tree(tree: &'q SyntaxTree) -> ExplainRequest<'q> {
        ExplainRequest::new(QueryInput::Tree(tree))
    }

    /// The algorithm variant (default: [`Variant::ConjAdd`], the paper's
    /// best coverage-per-second tradeoff).
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Overrides the session's instance-size limit for this request.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Wall-clock budget for this request; on expiry the drive stops and
    /// the solution is flagged [`Interrupted::Deadline`]. A deadline of
    /// zero returns immediately (useful as a liveness probe).
    ///
    /// [`Interrupted::Deadline`]: crate::Interrupted::Deadline
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Stops after `n` accepted instances (pre-minimization).
    pub fn max_results(mut self, n: usize) -> Self {
        self.max_results = Some(n);
        self
    }

    /// Overrides the session's thread budget for this request.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Installs a cooperative cancellation token (see [`CancelToken`]).
    ///
    /// [`Session::explain`] *adopts* the token as the stream's own:
    /// dropping the returned `SolutionStream` before the drive finishes
    /// fires it. Share a token across runs only if cancelling them
    /// together is intended (tokens never reset).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Captures a span trace of this request (`cqi-obs`): the run's
    /// request → root job → wave → solver-call span tree is returned as
    /// Chrome trace-event JSON on [`CSolution::trace`] (load it in
    /// Perfetto), and [`CSolution::stats`] gains the wall-time phase
    /// breakdown. The accepted stream is byte-identical with tracing on or
    /// off; untraced requests pay one relaxed atomic load per span site.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// Iterative deepening (§4.3's timeout-instead-of-limit mode): the
    /// drive reruns with the instance-size limit growing from
    /// `start_limit` by `step` until the request deadline (or the
    /// session's timeout) is exhausted, keeping the deepest completed
    /// solution. [`Session::explain_collect`] returns that solution;
    /// [`Session::explain_deepening`] also reports the limit it reached.
    pub fn deepening(mut self, start_limit: usize, step: usize) -> Self {
        self.deepening = Some((start_limit, step.max(1)));
        self
    }
}

/// Briefly locks the session cache slot and takes the bundle out (an empty
/// bundle runs cold and warms up as it goes).
fn checkout(slot: &Mutex<ChaseCaches>) -> ChaseCaches {
    std::mem::take(&mut *slot.lock().unwrap_or_else(|p| p.into_inner()))
}

/// Returns a bundle to the slot; under concurrent explains the last
/// check-in wins and the other bundle is simply dropped.
fn checkin(slot: &Mutex<ChaseCaches>, caches: ChaseCaches) {
    *slot.lock().unwrap_or_else(|p| p.into_inner()) = caches;
}

/// A compiled request input: borrowed for pre-parsed trees, owned for
/// freshly compiled sources.
enum Compiled<'q> {
    Borrowed(&'q SyntaxTree),
    Owned(SyntaxTree),
}

impl Compiled<'_> {
    fn as_ref(&self) -> &SyntaxTree {
        match self {
            Compiled::Borrowed(t) => t,
            Compiled::Owned(t) => t,
        }
    }

    fn into_owned(self) -> SyntaxTree {
        match self {
            Compiled::Borrowed(t) => t.clone(),
            Compiled::Owned(t) => t,
        }
    }
}

/// A reusable explanation session: schema + tuned [`ChaseConfig`] + warm
/// solver caches ([`ChaseCaches`]), shared across queries. The caches are
/// speed-only state — explaining the same query through a warm or a cold
/// session yields byte-identical streams.
pub struct Session {
    schema: Arc<Schema>,
    cfg: ChaseConfig,
    caches: Arc<Mutex<ChaseCaches>>,
}

impl Session {
    /// A session with the default configuration ([`ChaseConfig::default`]).
    pub fn new(schema: Arc<Schema>) -> Session {
        Session {
            schema,
            cfg: ChaseConfig::default(),
            caches: Arc::new(Mutex::new(ChaseCaches::new())),
        }
    }

    /// Replaces the session's base configuration (per-request knobs on
    /// [`ExplainRequest`] override it per call).
    pub fn config(mut self, cfg: ChaseConfig) -> Session {
        self.cfg = cfg;
        self
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn compile<'q>(&self, input: QueryInput<'q>) -> Result<Compiled<'q>, QueryError> {
        Ok(match input {
            QueryInput::Drc(src) => {
                Compiled::Owned(SyntaxTree::new(parse_query(&self.schema, src)?))
            }
            QueryInput::Sql(src) => {
                Compiled::Owned(SyntaxTree::new(sql_to_drc(&self.schema, src)?))
            }
            QueryInput::Tree(t) => Compiled::Borrowed(t),
        })
    }

    /// The effective per-run configuration: the session's base with the
    /// request's overrides applied.
    fn effective_cfg(&self, req: &ExplainRequest<'_>) -> ChaseConfig {
        let mut cfg = self.cfg.clone();
        if let Some(l) = req.limit {
            cfg.limit = l;
        }
        if let Some(d) = req.deadline {
            cfg.timeout = Some(d);
        }
        if let Some(m) = req.max_results {
            cfg.max_results = Some(m);
        }
        if let Some(t) = req.threads {
            cfg.threads = t;
        }
        if let Some(tok) = &req.cancel {
            cfg.cancel = Some(tok.clone());
        }
        if let Some(tr) = req.trace {
            cfg.trace = tr;
        }
        cfg
    }

    /// Checks the warm cache bundle out of the session (briefly locking),
    /// so the drive itself runs without holding the session mutex — a long
    /// streaming explain must not block concurrent requests on the same
    /// session. A concurrent checkout simply finds the slot empty and runs
    /// cold; last check-in wins.
    fn checkout_caches(&self) -> ChaseCaches {
        checkout(&self.caches)
    }

    fn checkin_caches(&self, caches: ChaseCaches) {
        checkin(&self.caches, caches);
    }

    /// Streaming explain: compiles the request, runs the drive on a worker
    /// thread, and returns a [`SolutionStream`] immediately. Instances
    /// arrive on the stream as the chase accepts them; dropping the stream
    /// cancels the drive.
    pub fn explain(&self, req: ExplainRequest<'_>) -> Result<SolutionStream, QueryError> {
        let tree = self.compile(req.input)?.into_owned();
        // The stream always owns a token so drop-cancellation works even
        // when the caller installed none.
        let cancel = req.cancel.clone().unwrap_or_default();
        let mut cfg = self.effective_cfg(&req);
        cfg.cancel = Some(cancel.clone());
        let variant = req.variant;
        let caches = Arc::clone(&self.caches);
        let (tx, rx) = mpsc::channel::<AcceptedInstance>();
        let handle = std::thread::Builder::new()
            .name("cqi-explain".to_owned())
            .spawn(move || {
                let mut bundle = checkout(&caches);
                // A failed send means the consumer dropped the stream:
                // halt the drive instead of exploring for nobody.
                let sol = run_variant_observed(&tree, variant, &cfg, &mut bundle, &mut |acc| {
                    tx.send(acc).is_ok()
                });
                checkin(&caches, bundle);
                sol
            })
            .expect("spawning the explain worker thread");
        Ok(SolutionStream {
            rx: Some(rx),
            handle: Some(handle),
            cancel,
        })
    }

    /// Callback-driven explain, running inline on the caller's thread:
    /// `observer` is invoked with every accepted instance as the drive
    /// produces it; returning `false` stops the drive (the remaining
    /// instances are never computed). Returns the batch solution over
    /// everything streamed.
    pub fn explain_with(
        &self,
        req: ExplainRequest<'_>,
        observer: &mut dyn FnMut(AcceptedInstance) -> bool,
    ) -> Result<CSolution, QueryError> {
        let compiled = self.compile(req.input)?;
        let cfg = self.effective_cfg(&req);
        let mut caches = self.checkout_caches();
        let sol = run_variant_observed(compiled.as_ref(), req.variant, &cfg, &mut caches, observer);
        self.checkin_caches(caches);
        Ok(sol)
    }

    /// Batch explain: the drop-in replacement for
    /// [`run_variant`](crate::run_variant), with session cache reuse.
    /// Skips the per-acceptance streaming machinery entirely (no instance
    /// clones — the original `run_variant` cost profile).
    pub fn explain_collect(&self, req: ExplainRequest<'_>) -> Result<CSolution, QueryError> {
        if req.deepening.is_some() {
            return self.explain_deepening(req).map(|(sol, _)| sol);
        }
        let compiled = self.compile(req.input)?;
        let cfg = self.effective_cfg(&req);
        let mut caches = self.checkout_caches();
        let sol = run_variant_batch(compiled.as_ref(), req.variant, &cfg, &mut caches);
        self.checkin_caches(caches);
        Ok(sol)
    }

    /// Iterative-deepening explain ([`ExplainRequest::deepening`]): grows
    /// the instance-size limit until the wall-clock budget (the request
    /// deadline, or 10 s) runs out and returns the deepest completed
    /// solution together with the limit it was found at. Without an
    /// explicit `deepening` option the limit starts at 2 and grows by 2
    /// per level.
    pub fn explain_deepening(
        &self,
        req: ExplainRequest<'_>,
    ) -> Result<(CSolution, usize), QueryError> {
        let (start_limit, step) = req.deepening.unwrap_or((2, 2));
        let compiled = self.compile(req.input)?;
        let cfg = self.effective_cfg(&req);
        Ok(crate::run_variant_deepening(
            compiled.as_ref(),
            req.variant,
            &cfg,
            start_limit,
            step,
        ))
    }
}

/// A live explanation: an iterator over [`AcceptedInstance`]s, yielding in
/// the deterministic accepted order while the drive runs on its worker
/// thread.
///
/// * Iterate (`for acc in &mut stream`) to consume instances as they
///   arrive; the iterator ends when the drive completes (or is
///   interrupted).
/// * [`SolutionStream::collect`] drains the remainder and returns the
///   [`CSolution`] the batch API would have produced — including
///   [`interrupted`](CSolution::interrupted) status for deadline expiry or
///   cancellation.
/// * [`SolutionStream::cancel`] (or dropping the stream) stops the drive
///   at its next poll; already-streamed instances stay valid.
pub struct SolutionStream {
    rx: Option<mpsc::Receiver<AcceptedInstance>>,
    handle: Option<JoinHandle<CSolution>>,
    cancel: CancelToken,
}

impl Iterator for SolutionStream {
    type Item = AcceptedInstance;

    fn next(&mut self) -> Option<AcceptedInstance> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl SolutionStream {
    /// A clone of the drive's cancellation token (shareable with other
    /// threads, timers, request handlers...).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cancellation; the drive stops at its next per-step poll.
    /// The stream then ends and [`SolutionStream::collect`] reports
    /// [`Interrupted::Cancelled`](crate::Interrupted::Cancelled) with the
    /// instances found so far.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Drains any remaining instances and returns the batch [`CSolution`]
    /// (the same minimal c-solution `run_variant` computes, plus the
    /// interruption status). Shadows `Iterator::collect` deliberately:
    /// "collect the stream" recovers the old batch API.
    pub fn collect(mut self) -> CSolution {
        // Drain rather than drop the receiver: a dropped receiver would
        // halt the drive mid-way through the remaining instances.
        if let Some(rx) = &self.rx {
            while rx.recv().is_ok() {}
        }
        let sol = self
            .handle
            .take()
            .expect("collect consumes the stream")
            .join()
            .expect("the explain worker thread panicked");
        self.rx = None;
        sol
    }
}

impl Drop for SolutionStream {
    fn drop(&mut self) {
        // Consumer walked away before the drive finished: stop it. (The
        // worker also halts on its next failed send; the token covers the
        // window between sends.) `collect` already took the handle, so this
        // only fires for abandoned streams. The worker thread is detached —
        // it exits at its next poll without blocking this drop.
        //
        // A *finished* drive must not be cancelled: the stream may share a
        // caller-supplied token with other runs, and consuming the stream
        // by value (`for acc in stream {}`) legitimately ends in drop. The
        // iterator only ends once the sender is dropped, i.e. the worker
        // returned — `try_recv` distinguishes that (Disconnected) from an
        // abandoned mid-drive stream (Empty or a pending item).
        let Some(handle) = &self.handle else { return };
        let finished = handle.is_finished()
            || self
                .rx
                .as_ref()
                .is_some_and(|rx| matches!(rx.try_recv(), Err(mpsc::TryRecvError::Disconnected)));
        if !finished {
            self.cancel.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_variant;
    use cqi_schema::DomainType;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .build()
                .unwrap(),
        )
    }

    const JOIN_QUERY: &str =
        "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }";

    #[test]
    fn all_front_ends_reach_the_chase() {
        let session = Session::new(schema());
        let drc = session
            .explain_collect(ExplainRequest::drc("{ (b1) | exists d1 (Likes(d1, b1)) }").limit(4))
            .unwrap();
        assert!(!drc.instances.is_empty());
        let sql = session
            .explain_collect(ExplainRequest::sql("SELECT l.beer FROM Likes l").limit(4))
            .unwrap();
        assert!(!sql.instances.is_empty());
        let q = parse_query(&session.schema, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let tree = SyntaxTree::new(q);
        let pre = session
            .explain_collect(ExplainRequest::tree(&tree).limit(4))
            .unwrap();
        assert_eq!(drc.num_coverages(), pre.num_coverages());
    }

    #[test]
    fn parse_errors_surface_without_panicking() {
        let session = Session::new(schema());
        assert!(session.explain_collect(ExplainRequest::drc("{ nope")).is_err());
        assert!(session
            .explain_collect(ExplainRequest::sql("SELECT FROM"))
            .is_err());
        assert!(session.explain(ExplainRequest::sql("SELECT x FROM Nope")).is_err());
    }

    #[test]
    fn callback_streams_before_the_drive_completes() {
        // The callback stops the drive after the first instance; a batch
        // run of the same request accepts strictly more. That is only
        // possible if the callback fired *during* the drive.
        let session = Session::new(schema());
        let batch = session
            .explain_collect(ExplainRequest::drc(JOIN_QUERY).limit(6))
            .unwrap();
        assert!(batch.raw_accepted > 1, "workload must be multi-instance");
        let mut seen = Vec::new();
        let partial = session
            .explain_with(ExplainRequest::drc(JOIN_QUERY).limit(6), &mut |acc| {
                seen.push(acc);
                false
            })
            .unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].ordinal, 0);
        assert!(
            partial.raw_accepted < batch.raw_accepted,
            "stopping the stream early must stop the drive early \
             ({} vs {})",
            partial.raw_accepted,
            batch.raw_accepted
        );
        // A consumer-stopped drive is a truncation, not a completion.
        assert_eq!(partial.interrupted, Some(crate::Interrupted::Cancelled));
    }

    #[test]
    fn deepening_reaches_a_completed_level_and_reports_it() {
        let session = Session::new(schema());
        let req = ExplainRequest::drc(JOIN_QUERY)
            .deadline(Duration::from_millis(300))
            .deepening(3, 1);
        let (sol, depth) = session.explain_deepening(req).unwrap();
        assert!(!sol.instances.is_empty());
        assert!(depth >= 3, "at least the starting level must complete");
        // The request-option route returns the same deepest solution.
        let via_collect = session
            .explain_collect(
                ExplainRequest::drc(JOIN_QUERY)
                    .deadline(Duration::from_millis(300))
                    .deepening(3, 1),
            )
            .unwrap();
        assert_eq!(via_collect.num_coverages(), sol.num_coverages());
    }

    #[test]
    fn stream_matches_batch_order_and_solution() {
        let session = Session::new(schema());
        let tree = SyntaxTree::new(parse_query(&session.schema, JOIN_QUERY).unwrap());
        let batch = run_variant(&tree, Variant::ConjAdd, &ChaseConfig::with_limit(6));
        let stream = session
            .explain(ExplainRequest::drc(JOIN_QUERY).limit(6))
            .unwrap();
        let mut stream = stream;
        let items: Vec<AcceptedInstance> = stream.by_ref().collect::<Vec<_>>();
        let sol = stream.collect();
        assert_eq!(items.len(), batch.raw_accepted);
        for (i, acc) in items.iter().enumerate() {
            assert_eq!(acc.ordinal, i);
        }
        assert_eq!(sol.raw_accepted, batch.raw_accepted);
        assert_eq!(sol.num_coverages(), batch.num_coverages());
        assert!(sol.interrupted.is_none());
    }

    #[test]
    fn zero_deadline_returns_immediately_interrupted() {
        let session = Session::new(schema());
        let stream = session
            .explain(
                ExplainRequest::drc(JOIN_QUERY)
                    .limit(12)
                    .deadline(Duration::ZERO),
            )
            .unwrap();
        let sol = stream.collect();
        assert_eq!(sol.interrupted, Some(crate::Interrupted::Deadline));
        assert!(sol.timed_out);
        assert_eq!(sol.raw_accepted, 0);
    }

    #[test]
    fn cancellation_mid_drive_flags_cancelled() {
        let session = Session::new(schema());
        let token = CancelToken::new();
        token.cancel(); // fire before the drive even starts
        let sol = session
            .explain_collect(
                ExplainRequest::drc(JOIN_QUERY).limit(8).cancel(token),
            )
            .unwrap();
        assert_eq!(sol.interrupted, Some(crate::Interrupted::Cancelled));
        assert!(!sol.timed_out, "cancellation is not a deadline expiry");
        // And mid-drive: cancel from the callback after the first instance.
        let token = CancelToken::new();
        let tok = token.clone();
        let sol = session
            .explain_with(
                ExplainRequest::drc(JOIN_QUERY).limit(8).cancel(token),
                &mut |_| {
                    tok.cancel();
                    true
                },
            )
            .unwrap();
        assert_eq!(sol.interrupted, Some(crate::Interrupted::Cancelled));
        assert!(sol.raw_accepted >= 1);
    }

    #[test]
    fn warm_session_caches_do_not_change_answers() {
        // Explain A, then B on the same session (warm caches), and compare
        // B against a cold session: identical streams, byte for byte.
        let warm = Session::new(schema());
        warm.explain_collect(ExplainRequest::drc("{ (b1) | exists d1 (Likes(d1, b1)) }").limit(5))
            .unwrap();
        let cold = Session::new(schema());
        let render = |s: &Session| -> Vec<String> {
            let mut out = Vec::new();
            s.explain_with(ExplainRequest::drc(JOIN_QUERY).limit(6), &mut |acc| {
                out.push(format!("{}", acc.inst));
                true
            })
            .unwrap();
            out
        };
        assert_eq!(render(&warm), render(&cold));
    }

    #[test]
    fn warm_caches_respect_per_request_limit_and_variant() {
        // The bfs/consistency memos depend on the size limit and the
        // variant's fresh-null policy; a session explaining the same query
        // under different per-request parameters must match a cold session
        // exactly (the ChaseCaches fingerprint clears what is unsafe).
        // The ∀ query is the sharp case: `Handle-Universal` explores a
        // fresh-null branch only under the Naive variants, so a stale
        // sub-BFS memo from an EO run would silently drop solutions.
        let forall_query = "{ (x1, b1) | exists p1 . Serves(x1, b1, p1) \
             and forall p2, x2 (not Serves(x2, b1, p2) or p2 <= p1) }";
        let render = |sol: &CSolution| -> Vec<String> {
            sol.instances.iter().map(|si| format!("{}", si.inst)).collect()
        };
        for src in [JOIN_QUERY, forall_query] {
            let warm = Session::new(schema());
            for (limit, v) in [
                (4, Variant::DisjEO),
                (6, Variant::DisjEO),    // limit grew
                (6, Variant::DisjNaive), // universal_fresh flips
                (4, Variant::DisjEO),    // and back
                (6, Variant::ConjAdd),   // conjunctive trees
            ] {
                let w = warm
                    .explain_collect(ExplainRequest::drc(src).limit(limit).variant(v))
                    .unwrap();
                let c = Session::new(schema())
                    .explain_collect(ExplainRequest::drc(src).limit(limit).variant(v))
                    .unwrap();
                assert_eq!(w.raw_accepted, c.raw_accepted, "{src} limit={limit} {v}");
                assert_eq!(render(&w), render(&c), "{src} limit={limit} {v}");
            }
        }
    }

    /// White-box drop semantics (the real workloads complete in
    /// microseconds, so wall-clock-based assertions about "mid-drive"
    /// would race): a stream whose worker is provably still running must
    /// fire the token on drop; one whose worker provably finished must
    /// leave it untouched.
    #[test]
    fn drop_cancels_unfinished_drives_and_spares_finished_ones() {
        let empty_sol = || CSolution {
            instances: Vec::new(),
            raw_accepted: 0,
            timed_out: false,
            interrupted: None,
            total_time: Duration::ZERO,
            stats: Default::default(),
            trace: None,
        };

        // Unfinished: the worker blocks on a gate until after the drop.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (tx, rx) = mpsc::channel::<AcceptedInstance>();
        let handle = std::thread::spawn(move || {
            gate_rx.recv().ok();
            drop(tx);
            empty_sol()
        });
        let token = CancelToken::new();
        let stream = SolutionStream {
            rx: Some(rx),
            handle: Some(handle),
            cancel: token.clone(),
        };
        drop(stream);
        assert!(token.is_cancelled(), "mid-drive drop must fire the token");
        gate_tx.send(()).ok();

        // Finished: the sender is already dropped (worker returned its
        // solution), as after a by-value `for acc in stream {}` loop.
        let (tx, rx) = mpsc::channel::<AcceptedInstance>();
        let handle = std::thread::spawn(move || {
            drop(tx);
            empty_sol()
        });
        while !matches!(rx.try_recv(), Err(mpsc::TryRecvError::Disconnected)) {
            std::thread::yield_now();
        }
        let token = CancelToken::new();
        let stream = SolutionStream {
            rx: Some(rx),
            handle: Some(handle),
            cancel: token.clone(),
        };
        drop(stream);
        assert!(
            !token.is_cancelled(),
            "a finished drive must not poison a (possibly shared) token"
        );
    }

    #[test]
    fn consuming_the_stream_by_value_does_not_fire_the_users_token() {
        // `for acc in stream {}` ends in drop, not collect(); a completed
        // drive must leave a caller-supplied (possibly shared) token
        // untouched.
        let session = Session::new(schema());
        let token = CancelToken::new();
        let stream = session
            .explain(
                ExplainRequest::drc(JOIN_QUERY)
                    .limit(5)
                    .cancel(token.clone()),
            )
            .unwrap();
        for _ in stream {}
        assert!(
            !token.is_cancelled(),
            "a drive that ran to completion must not poison the token"
        );
    }

    #[test]
    fn warm_caches_are_query_scoped_not_shape_scoped() {
        // Two queries with the same formula *shape* but different variable
        // names: the second must not inherit the first's sub-BFS results
        // (fresh nulls are named/typed from the query's variable table).
        let warm = Session::new(schema());
        let q_a = "{ (b1) | exists d1 (Likes(d1, b1)) }";
        let q_b = "{ (b1) | exists person (Likes(person, b1)) }";
        warm.explain_collect(ExplainRequest::drc(q_a).limit(4)).unwrap();
        let render = |sol: &CSolution| -> Vec<String> {
            sol.instances.iter().map(|si| format!("{}", si.inst)).collect()
        };
        let w = warm.explain_collect(ExplainRequest::drc(q_b).limit(4)).unwrap();
        let c = Session::new(schema())
            .explain_collect(ExplainRequest::drc(q_b).limit(4))
            .unwrap();
        assert_eq!(render(&w), render(&c));
        assert!(
            render(&w).iter().any(|r| r.contains("person")),
            "the second query's own variable names must appear: {:?}",
            render(&w)
        );
    }

    #[test]
    fn session_mutex_is_not_held_during_the_drive() {
        // Long drives must not serialize a session: the cache bundle is
        // checked out before the run, so the slot is lockable mid-drive
        // (a concurrent request would run cold instead of blocking).
        let session = Session::new(schema());
        let mut polled = false;
        session
            .explain_with(ExplainRequest::drc(JOIN_QUERY).limit(5), &mut |_| {
                polled = true;
                assert!(
                    session.caches.try_lock().is_ok(),
                    "cache mutex must be free while the drive runs"
                );
                true
            })
            .unwrap();
        assert!(polled);
    }
}
