//! Coverage of satisfying c-instances with respect to the *original* query
//! syntax tree.
//!
//! This is the constructive counterpart of Definition 8 that the paper's
//! implementation uses ("we keep track of the coverage of each c-instance
//! as it is created"): a leaf is covered when its homomorphic image is
//! certainly satisfied by the instance — a tuple for positive leaves,
//! membership in the global condition for negated/comparison leaves — and
//! the recursion mirrors Definition 7, unioning over the per-domain entity
//! pools at quantifiers and over all satisfying assignments of the output
//! variables at the top.

use cqi_drc::{Coverage, Formula, LeafId, Query};
use cqi_instance::CInstance;
use cqi_solver::Ent;

use crate::treesat::{Hom, SatCtx};

/// `cov(Q, I)` for a satisfying c-instance.
pub fn coverage_of_cinstance(q: &Query, inst: &CInstance) -> Coverage {
    coverage_of_cinstance_keys(q, inst, false)
}

/// `cov(Q, I)` with key constraints taken into account during certainty
/// checks.
pub fn coverage_of_cinstance_keys(q: &Query, inst: &CInstance, enforce_keys: bool) -> Coverage {
    let ctx = SatCtx::new(q, inst, enforce_keys);
    let mut cov = Coverage::new();
    let mut h: Hom = vec![None; q.vars.len()];
    enumerate_alphas(&ctx, &mut h, 0, &mut cov);
    cov
}

fn enumerate_alphas(ctx: &SatCtx<'_>, h: &mut Hom, i: usize, cov: &mut Coverage) {
    let q = ctx.query;
    if i == q.out_vars.len() {
        if ctx.tree_sat(&q.formula, h) {
            let mut next = 0u32;
            walk(ctx, h, &q.formula, &mut next, cov);
        }
        return;
    }
    let v = q.out_vars[i];
    let pool: Vec<Ent> = ctx.inst.domain_pool(q.var_domain(v)).to_vec();
    for e in pool {
        h[v.index()] = Some(e);
        enumerate_alphas(ctx, h, i + 1, cov);
    }
    h[v.index()] = None;
}

fn walk(ctx: &SatCtx<'_>, h: &mut Hom, f: &Formula, next: &mut u32, cov: &mut Coverage) {
    match f {
        Formula::Atom(a) => {
            let id = LeafId(*next);
            *next += 1;
            if ctx.leaf(h, a) {
                cov.insert(id);
            }
        }
        Formula::And(l, r) | Formula::Or(l, r) => {
            walk(ctx, h, l, next, cov);
            walk(ctx, h, r, next, cov);
        }
        Formula::Exists(v, b) | Formula::Forall(v, b) => {
            let start = *next;
            let pool: Vec<Ent> = ctx.inst.domain_pool(ctx.query.var_domain(*v)).to_vec();
            let mut end = start;
            if pool.is_empty() {
                let mut probe = start;
                count_leaves(b, &mut probe);
                end = probe;
            }
            for e in pool {
                h[v.index()] = Some(e);
                let mut sub = start;
                walk(ctx, h, b, &mut sub, cov);
                end = sub;
            }
            h[v.index()] = None;
            *next = end;
        }
    }
}

fn count_leaves(f: &Formula, next: &mut u32) {
    match f {
        Formula::Atom(_) => *next += 1,
        Formula::And(l, r) | Formula::Or(l, r) => {
            count_leaves(l, next);
            count_leaves(r, next);
        }
        Formula::Exists(_, b) | Formula::Forall(_, b) => count_leaves(b, next),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_instance::Cond;
    use cqi_schema::{DomainType, Schema};
    use cqi_solver::{Lit, SolverOp};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn conjunctive_instance_covers_all_leaves() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists d1 (Likes(d1, b1)) and exists x1, p1 (Serves(x1, b1, p1)) }",
        )
        .unwrap();
        let serves = s.rel_id("Serves").unwrap();
        let likes = s.rel_id("Likes").unwrap();
        let mut inst = CInstance::new(Arc::clone(&s));
        let b1 = inst.fresh_null("b1", s.attr_domain(likes, 1));
        let d1 = inst.fresh_null("d1", s.attr_domain(likes, 0));
        let x1 = inst.fresh_null("x1", s.attr_domain(serves, 0));
        let p1 = inst.fresh_null("p1", s.attr_domain(serves, 2));
        inst.add_tuple(likes, vec![d1.into(), b1.into()]);
        inst.add_tuple(serves, vec![x1.into(), b1.into(), p1.into()]);
        let cov = coverage_of_cinstance(&q, &inst);
        assert_eq!(cov.len(), 2);
    }

    #[test]
    fn partial_instance_covers_one_disjunct() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
        )
        .unwrap();
        let serves = s.rel_id("Serves").unwrap();
        let mut inst = CInstance::new(Arc::clone(&s));
        let b1 = inst.fresh_null("b1", s.attr_domain(serves, 1));
        let x1 = inst.fresh_null("x1", s.attr_domain(serves, 0));
        let p1 = inst.fresh_null("p1", s.attr_domain(serves, 2));
        inst.add_tuple(serves, vec![x1.into(), b1.into(), p1.into()]);
        inst.add_cond(Cond::Lit(Lit::cmp(
            p1,
            SolverOp::Gt,
            cqi_schema::Value::real(3.0),
        )));
        let cov = coverage_of_cinstance(&q, &inst);
        // Leaves: Serves (0), p1>3 (1), p1<1 (2): only 0 and 1 covered.
        assert_eq!(cov.len(), 2);
        assert!(cov.contains(&LeafId(0)));
        assert!(cov.contains(&LeafId(1)));
    }

    #[test]
    fn unsatisfying_instance_has_empty_coverage() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let inst = CInstance::new(Arc::clone(&s));
        assert!(coverage_of_cinstance(&q, &inst).is_empty());
    }
}
