//! `Tree-SAT` (Algorithm 7): does a c-instance satisfy a query syntax tree?
//!
//! * A **positive relational leaf** is satisfied when the homomorphic image
//!   of its tuple is (syntactically) a row of the instance.
//! * A **condition leaf** (comparison, `LIKE`, negated relational atom) is
//!   satisfied when it holds in *every possible world*, i.e. the global
//!   condition **entails** it: `φ(I) ∧ ¬lit` is unsatisfiable. (Algorithm 7
//!   writes this as membership in `φ(I)`; the paper's own example I1
//!   (Fig. 6) requires the entailment reading — `p1 > p2` must satisfy the
//!   leaf `p1 ≥ p2` — and its implementation discharged these checks with
//!   an SMT solver.)
//! * Quantifiers range over the instance's per-domain entity pools; free
//!   variables left unbound by the caller's homomorphism are existentially
//!   closed at entry (lines 1–3).

use std::cell::RefCell;
use std::collections::HashMap;

use cqi_drc::{Atom, CmpOp, Formula, Query, Term, VarId};
use cqi_instance::consistency::to_problem;
use cqi_instance::CInstance;
use cqi_schema::Value;
use cqi_solver::{Ent, Lit, Problem, SolverOp};

/// A (partial) homomorphism from query variables to instance entities.
pub type Hom = Vec<Option<Ent>>;

pub(crate) fn cmp_to_solver_op(op: CmpOp) -> Option<SolverOp> {
    Some(match op {
        CmpOp::Lt => SolverOp::Lt,
        CmpOp::Le => SolverOp::Le,
        CmpOp::Gt => SolverOp::Gt,
        CmpOp::Ge => SolverOp::Ge,
        CmpOp::Eq => SolverOp::Eq,
        CmpOp::Ne => SolverOp::Ne,
        CmpOp::Like => return None,
    })
}

/// Resolves a term under a homomorphism; `None` encodes a wildcard.
fn resolve(h: &Hom, t: &Term) -> Option<Ent> {
    match t {
        Term::Var(v) => Some(h[v.index()].clone().expect("free variable bound by closure")),
        Term::Const(c) => Some(Ent::Const(c.clone())),
        Term::Wildcard => None,
    }
}

/// Converts a (possibly negated) comparison atom with resolved sides to a
/// canonical literal.
pub(crate) fn atom_to_lit(atom: &Atom, a: &Ent, b: &Ent) -> Lit {
    let Atom::Cmp { negated, op, .. } = atom else {
        panic!("atom_to_lit on relational atom")
    };
    let lit = match op {
        CmpOp::Like => {
            let pattern = match b {
                Ent::Const(Value::Str(p)) => p.to_string(),
                other => panic!("LIKE pattern must be a string constant, got {other:?}"),
            };
            Lit::Like {
                negated: *negated,
                ent: a.clone(),
                pattern,
            }
        }
        other => {
            let mut sop = cmp_to_solver_op(*other).unwrap();
            if *negated {
                sop = sop.negate();
            }
            Lit::Cmp {
                lhs: a.clone(),
                op: sop,
                rhs: b.clone(),
            }
        }
    };
    lit.canonical()
}

/// Reusable satisfaction context: the instance's possible-worlds constraint
/// system is built once and shared by every leaf entailment check.
pub struct SatCtx<'a> {
    pub query: &'a Query,
    pub inst: &'a CInstance,
    base: Problem,
    /// Entailment answers are pure functions of the (immutable) instance;
    /// Tree-SAT revisits the same literals across pool iterations, so a
    /// small memo pays for itself immediately.
    entail_cache: RefCell<HashMap<Lit, bool>>,
    row_cache: RefCell<HashMap<RowKey, bool>>,
}

/// (relation, resolved pattern, row index) — key of the negated-atom
/// matchability memo.
type RowKey = (u32, Vec<Option<Ent>>, usize);

impl<'a> SatCtx<'a> {
    pub fn new(query: &'a Query, inst: &'a CInstance, enforce_keys: bool) -> SatCtx<'a> {
        SatCtx {
            query,
            inst,
            base: to_problem(inst, enforce_keys),
            entail_cache: RefCell::new(HashMap::new()),
            row_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Does `φ(I)` entail `lit` — i.e. is `φ ∧ ¬lit` unsatisfiable?
    fn entails(&self, lit: &Lit) -> bool {
        if let Some(v) = self.entail_cache.borrow().get(lit) {
            return *v;
        }
        let mut p = self.base.clone();
        p.assert(lit.negate());
        let ans = !cqi_solver::is_sat(&p);
        self.entail_cache.borrow_mut().insert(lit.clone(), ans);
        ans
    }

    /// Could the entity vector match row `t` in some possible world?
    fn row_matchable(&self, rel: u32, row_idx: usize, pattern: &[Option<Ent>], row: &[Ent]) -> bool {
        let key = (rel, pattern.to_vec(), row_idx);
        if let Some(v) = self.row_cache.borrow().get(&key) {
            return *v;
        }
        let mut p = self.base.clone();
        for (e, cell) in pattern.iter().zip(row) {
            let Some(e) = e else { continue }; // wildcard matches anything
            if e == cell {
                continue;
            }
            p.assert(Lit::Cmp {
                lhs: e.clone(),
                op: SolverOp::Eq,
                rhs: cell.clone(),
            });
        }
        let ans = cqi_solver::is_sat(&p);
        self.row_cache.borrow_mut().insert(key, ans);
        ans
    }

    /// Is one leaf satisfied under `h` (Algorithm 7 lines 4–8)?
    pub fn leaf(&self, h: &Hom, atom: &Atom) -> bool {
        match atom {
            Atom::Rel { negated: false, rel, terms } => {
                let pattern: Vec<Option<Ent>> =
                    terms.iter().map(|t| resolve(h, t)).collect();
                self.inst.tables[rel.index()].iter().any(|row| {
                    pattern
                        .iter()
                        .zip(row)
                        .all(|(p, cell)| p.as_ref().is_none_or(|p| p == cell))
                })
            }
            Atom::Rel { negated: true, rel, terms } => {
                // Certain absence: no row of R can coincide with the image
                // in any possible world. (A syntactic ¬R(...) condition in
                // φ(I) makes the corresponding rows unmatchable through its
                // clause expansion.)
                let pattern: Vec<Option<Ent>> =
                    terms.iter().map(|t| resolve(h, t)).collect();
                !self.inst.tables[rel.index()]
                    .iter()
                    .enumerate()
                    .any(|(i, row)| self.row_matchable(rel.0, i, &pattern, row))
            }
            Atom::Cmp { negated, lhs, op, rhs } => {
                let (Some(a), Some(b)) = (resolve(h, lhs), resolve(h, rhs)) else {
                    return false;
                };
                // Constant-constant comparisons evaluate directly.
                if let (Ent::Const(ca), Ent::Const(cb)) = (&a, &b) {
                    let truth = match op {
                        CmpOp::Like => match (ca, cb) {
                            (Value::Str(s), Value::Str(p)) => {
                                cqi_solver::nfa::like_match(p, s)
                            }
                            _ => false,
                        },
                        other => cmp_to_solver_op(*other)
                            .unwrap()
                            .eval(ca, cb)
                            .unwrap_or(false),
                    };
                    return truth != *negated;
                }
                self.entails(&atom_to_lit(atom, &a, &b))
            }
        }
    }

    fn sat(&self, h: &mut Hom, f: &Formula) -> bool {
        match f {
            Formula::Atom(a) => self.leaf(h, a),
            Formula::And(l, r) => self.sat(h, l) && self.sat(h, r),
            Formula::Or(l, r) => self.sat(h, l) || self.sat(h, r),
            Formula::Exists(v, b) => {
                let pool = self.inst.domain_pool(self.query.var_domain(*v)).to_vec();
                for e in pool {
                    h[v.index()] = Some(e);
                    if self.sat(h, b) {
                        h[v.index()] = None;
                        return true;
                    }
                }
                h[v.index()] = None;
                false
            }
            Formula::Forall(v, b) => {
                // The universal must also range over don't-care nulls
                // sitting in columns of this domain: they are outside the
                // pool (Definition 3) but take *some* active-domain value in
                // every possible world, so a body that fails under one of
                // them fails in every grounding.
                let d = self.query.var_domain(*v);
                let mut pool = self.inst.domain_pool(d).to_vec();
                pool.extend(self.inst.dont_cares_in_domain(d));
                for e in pool {
                    h[v.index()] = Some(e);
                    if !self.sat(h, b) {
                        h[v.index()] = None;
                        return false;
                    }
                }
                h[v.index()] = None;
                true
            }
        }
    }

    /// `Tree-SAT(Q, I, f)`: satisfiability of `formula` under the partial
    /// mapping `h`, existentially closing unbound free variables.
    pub fn tree_sat(&self, formula: &Formula, h: &Hom) -> bool {
        let mut h = h.clone();
        h.resize(self.query.vars.len(), None);
        let free: Vec<VarId> = formula
            .free_vars()
            .into_iter()
            .filter(|v| h[v.index()].is_none())
            .collect();
        self.close_and_sat(formula, &mut h, &free)
    }

    fn close_and_sat(&self, formula: &Formula, h: &mut Hom, free: &[VarId]) -> bool {
        match free.split_first() {
            None => self.sat(h, formula),
            Some((v, rest)) => {
                let pool = self.inst.domain_pool(self.query.var_domain(*v)).to_vec();
                for e in pool {
                    h[v.index()] = Some(e);
                    if self.close_and_sat(formula, h, rest) {
                        h[v.index()] = None;
                        return true;
                    }
                }
                h[v.index()] = None;
                false
            }
        }
    }
}

/// One-shot `Tree-SAT` under a given partial homomorphism.
pub fn tree_sat_with(q: &Query, inst: &CInstance, formula: &Formula, h: &Hom) -> bool {
    SatCtx::new(q, inst, false).tree_sat(formula, h)
}

/// `I |= Q` with all output variables existentially closed (the acceptance
/// check of Algorithm 1 applied to the whole query).
pub fn tree_sat(q: &Query, inst: &CInstance) -> bool {
    tree_sat_with(q, inst, &q.formula, &vec![None; q.vars.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_instance::Cond;
    use cqi_schema::{DomainType, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .build()
                .unwrap(),
        )
    }

    /// A hand-built instance shaped like the paper's I1 (Fig. 6), minus the
    /// FK-parent rows (this schema declares no FKs).
    fn i1(s: &Arc<Schema>) -> CInstance {
        let serves = s.rel_id("Serves").unwrap();
        let likes = s.rel_id("Likes").unwrap();
        let mut inst = CInstance::new(Arc::clone(s));
        let (bd, ed, pd) = (
            s.attr_domain(serves, 0),
            s.attr_domain(serves, 1),
            s.attr_domain(serves, 2),
        );
        let dd = s.attr_domain(likes, 0);
        let d1 = inst.fresh_null("d1", dd);
        let b1 = inst.fresh_null("b1", ed);
        let x1 = inst.fresh_null("x1", bd);
        let x2 = inst.fresh_null("x2", bd);
        let p1 = inst.fresh_null("p1", pd);
        let p2 = inst.fresh_null("p2", pd);
        inst.add_tuple(serves, vec![x1.into(), b1.into(), p1.into()]);
        inst.add_tuple(serves, vec![x2.into(), b1.into(), p2.into()]);
        inst.add_tuple(likes, vec![d1.into(), b1.into()]);
        inst.add_cond(Cond::Lit(Lit::like(d1, "Eve%")));
        inst.add_cond(Cond::Lit(Lit::cmp(p1, SolverOp::Gt, p2)));
        inst
    }

    #[test]
    fn qb_satisfied_by_i1() {
        let s = schema();
        let qb = parse_query(
            &s,
            "{ (x1, b1) | exists d1, p1, x2, p2 . Serves(x1, b1, p1) and Likes(d1, b1) \
             and d1 like 'Eve%' and Serves(x2, b1, p2) and p1 > p2 }",
        )
        .unwrap();
        assert!(tree_sat(&qb, &i1(&s)));
    }

    /// Found by the `cqi-fuzz` differential campaign: a null created under
    /// one domain but joined into a same-typed column of another domain
    /// must be visible to quantifiers over that column's domain. Before
    /// occurrence-closing the pools, the ∀ below ranged over an empty pool
    /// and passed vacuously even though the instance's only row violates
    /// it in every grounding.
    #[test]
    fn forall_sees_cross_domain_nulls() {
        let s = schema();
        let likes = s.rel_id("Likes").unwrap();
        let (dd, ed) = (s.attr_domain(likes, 0), s.attr_domain(likes, 1));
        assert_ne!(dd, ed, "test needs Likes.drinker and Likes.beer distinct");
        let mut inst = CInstance::new(Arc::clone(&s));
        let n = inst.fresh_null("x1", dd);
        inst.add_tuple(likes, vec![n.into(), n.into()]);
        // x1 reused across both Text domains (legal: types agree).
        let q_pos = parse_query(&s, "{ (x1) | Likes(x1, x1) }").unwrap();
        assert!(tree_sat(&q_pos, &inst), "positive core must close over x1");
        let q = parse_query(
            &s,
            "{ (x1) | Likes(x1, x1) and forall f (not Likes(*, f)) }",
        )
        .unwrap();
        // f ranges over the beer domain; the row's beer cell holds the
        // drinker-domain null n, so ¬Likes(*, f) fails at f = n.
        assert!(!tree_sat(&q, &inst));
    }

    /// Also found by `cqi-fuzz`: don't-care nulls stay out of the pools
    /// (Definition 3) but still take *some* value in every possible world,
    /// so a universal over their column's domain must range over them.
    #[test]
    fn forall_sees_dont_care_cells() {
        let s = schema();
        let serves = s.rel_id("Serves").unwrap();
        let (bd, ed, pd) = (
            s.attr_domain(serves, 0),
            s.attr_domain(serves, 1),
            s.attr_domain(serves, 2),
        );
        let mut inst = CInstance::new(Arc::clone(&s));
        let x1 = inst.fresh_null("x1", bd);
        let b1 = inst.fresh_null("b1", ed);
        let dc = inst.fresh_dont_care(pd);
        inst.add_tuple(serves, vec![x1.into(), b1.into(), dc.into()]);
        let q_pos =
            parse_query(&s, "{ (x1) | exists b1 (Serves(x1, b1, *)) }").unwrap();
        assert!(tree_sat(&q_pos, &inst));
        let q = parse_query(
            &s,
            "{ (x1) | exists b1 (Serves(x1, b1, *)) and forall p (not Serves(*, *, p)) }",
        )
        .unwrap();
        // The price pool is empty, but the don't-care cell grounds to some
        // price in every world — the ∀ cannot pass vacuously.
        assert!(!tree_sat(&q, &inst));
    }

    #[test]
    fn entailed_comparison_satisfies_leaf() {
        // The instance stores p1 > p2; the leaves p2 < p1, p1 >= p2, and
        // p1 != p2 are all entailed.
        let s = schema();
        for cond in ["p2 < p1", "p1 >= p2", "p1 != p2"] {
            let q = parse_query(
                &s,
                &format!(
                    "{{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and {cond} }}"
                ),
            )
            .unwrap();
            assert!(tree_sat(&q, &i1(&s)), "{cond} should be entailed");
        }
    }

    #[test]
    fn reflexive_comparisons() {
        // p1 >= p1 is always certain; p1 > p1 never.
        let s = schema();
        let q_ge = parse_query(
            &s,
            "{ (x1, b1) | exists p1 (Serves(x1, b1, p1) and p1 >= p1) }",
        )
        .unwrap();
        assert!(tree_sat(&q_ge, &i1(&s)));
        let q_gt = parse_query(
            &s,
            "{ (x1, b1) | exists p1 (Serves(x1, b1, p1) and p1 > p1) }",
        )
        .unwrap();
        assert!(!tree_sat(&q_gt, &i1(&s)));
    }

    #[test]
    fn non_entailed_comparison_fails() {
        // p1 = 99.0 is satisfiable in some worlds but not *certain*.
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1, b1) | exists p1 (Serves(x1, b1, p1) and p1 = 99.0) }",
        )
        .unwrap();
        assert!(!tree_sat(&q, &i1(&s)));
        // But equality between two existentials is certain via the
        // reflexive mapping p1 = p2 ↦ the same null.
        let q2 = parse_query(
            &s,
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 = p2 }",
        )
        .unwrap();
        assert!(tree_sat(&q2, &i1(&s)));
    }

    #[test]
    fn negated_atom_certain_absence() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
        )
        .unwrap();
        let mut inst = i1(&s);
        // d1 likes b1 in the instance: fails.
        assert!(!tree_sat(&q, &inst));
        // A second drinker with ¬Likes(d2, b1): the ∀ over {d1, d2} still
        // fails because of d1.
        let likes = s.rel_id("Likes").unwrap();
        let dd = s.attr_domain(likes, 0);
        let d2 = inst.fresh_null("d2", dd);
        inst.add_cond(Cond::NotIn {
            rel: likes,
            tuple: vec![d2.into(), Ent::Null(cqi_solver::NullId(1))],
        });
        assert!(!tree_sat(&q, &inst));
    }

    #[test]
    fn not_in_condition_makes_absence_certain() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
        )
        .unwrap();
        let serves = s.rel_id("Serves").unwrap();
        let likes = s.rel_id("Likes").unwrap();
        let mut inst = CInstance::new(Arc::clone(&s));
        let b1 = inst.fresh_null("b1", s.attr_domain(serves, 1));
        let x1 = inst.fresh_null("x1", s.attr_domain(serves, 0));
        let p1 = inst.fresh_null("p1", s.attr_domain(serves, 2));
        let d1 = inst.fresh_null("d1", s.attr_domain(likes, 0));
        inst.add_tuple(serves, vec![x1.into(), b1.into(), p1.into()]);
        inst.add_cond(Cond::NotIn {
            rel: likes,
            tuple: vec![d1.into(), b1.into()],
        });
        assert!(tree_sat(&q, &inst));
    }

    #[test]
    fn absence_not_certain_without_condition() {
        // Same shape but no ¬Likes condition and an actual Likes row whose
        // drinker could equal d1.
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
        )
        .unwrap();
        let serves = s.rel_id("Serves").unwrap();
        let likes = s.rel_id("Likes").unwrap();
        let mut inst = CInstance::new(Arc::clone(&s));
        let b1 = inst.fresh_null("b1", s.attr_domain(serves, 1));
        let x1 = inst.fresh_null("x1", s.attr_domain(serves, 0));
        let p1 = inst.fresh_null("p1", s.attr_domain(serves, 2));
        let d1 = inst.fresh_null("d1", s.attr_domain(likes, 0));
        inst.add_tuple(serves, vec![x1.into(), b1.into(), p1.into()]);
        inst.add_tuple(likes, vec![d1.into(), b1.into()]);
        assert!(!tree_sat(&q, &inst));
    }

    #[test]
    fn wildcard_in_positive_leaf() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists x1 (Serves(x1, b1, *)) }").unwrap();
        assert!(tree_sat(&q, &i1(&s)));
    }

    #[test]
    fn empty_instance_fails() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let inst = CInstance::new(Arc::clone(&s));
        assert!(!tree_sat(&q, &inst));
    }

    #[test]
    fn negated_like_entailment() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists d1 (Likes(d1, b1) and not (d1 like 'Eve %')) }",
        )
        .unwrap();
        let mut inst = i1(&s);
        // 'Eve%' does not entail ¬'Eve %' (the name could still contain the
        // space).
        assert!(!tree_sat(&q, &inst));
        inst.add_cond(Cond::Lit(Lit::not_like(cqi_solver::NullId(0), "Eve %")));
        assert!(tree_sat(&q, &inst));
    }

    #[test]
    fn equality_in_condition_propagates_to_leaf() {
        // φ has d1 = 'Eve Smith'; the leaf d1 LIKE 'Eve%' is entailed.
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists d1 (Likes(d1, b1) and d1 like 'Eve%') }",
        )
        .unwrap();
        let likes = s.rel_id("Likes").unwrap();
        let mut inst = CInstance::new(Arc::clone(&s));
        let d1 = inst.fresh_null("d1", s.attr_domain(likes, 0));
        let b1 = inst.fresh_null("b1", s.attr_domain(likes, 1));
        inst.add_tuple(likes, vec![d1.into(), b1.into()]);
        inst.add_cond(Cond::Lit(Lit::cmp(
            d1,
            SolverOp::Eq,
            Value::str("Eve Smith"),
        )));
        assert!(tree_sat(&q, &inst));
    }
}
