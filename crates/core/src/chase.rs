//! The chase over c-instances: `Tree-Chase-BFS` (Algorithm 1), `Tree-Chase`
//! (Algorithm 2), and the four node handlers (Algorithms 3–6).
//!
//! The BFS explores the (implicit) chase tree: every popped c-instance is
//! first tested with `Tree-SAT` + `IsConsistent` (satisfying instances are
//! *results* and are not expanded further), then expanded by the recursive
//! `Tree-Chase`, which dispatches on the root operator of the current
//! subtree and recursively re-enters the BFS on child subtrees. The
//! `visited` set deduplicates modulo renaming of labeled nulls
//! ([`cqi_instance::is_isomorphic`]), and the `limit` bound on instance size
//! guarantees termination (Proposition 3.1 makes an unbounded search
//! undecidable).
//!
//! ## Execution model (`cqi-runtime`)
//!
//! The *top-level* frontier of Algorithm 1 is a work-list of independent
//! branch candidates, and expanding one candidate is a pure function of the
//! candidate — all mutable state ([`WorkerCtx`]: solver memos, saturated
//! states, sub-BFS results) only affects speed. [`Chase`] therefore routes
//! the top-level loop through a [`cqi_runtime::FrontierScheduler`]:
//! sequentially with one context when `ChaseConfig::threads <= 1`,
//! wave-parallel over per-worker contexts otherwise, with the `visited`
//! check backed by [`cqi_runtime::ShardedDedupe`] keyed on the
//! [`signature`]/[`exact_digest`] iso-invariants. Multi-root runs (the
//! `Conj-*` tree sets and the `*-Add` re-seeds) additionally fan out whole
//! root searches across workers ([`Chase::run_roots`]). Results are merged
//! in FIFO/job order, so parallel runs accept the *same instances in the
//! same order* as sequential ones (asserted by
//! `crates/core/tests/parallel_props.rs`).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqi_drc::{Atom, Coverage, Formula, Query, Term, VarId};
use cqi_obs::trace::{self, Phase};
use cqi_instance::consistency::{
    conj_lits, is_consistent, is_consistent_cached, is_pure_conjunctive, to_problem,
};
use cqi_instance::{
    digest_stats, exact_digest, exact_digest_fresh, is_isomorphic, signature, signature_fresh,
    subsumes, CInstance, Cond,
};
use cqi_runtime::{
    DriveStats, Exec, Expansion, FrontierScheduler, FrontierTask, MemoCounts, ParallelScheduler,
    ResidentPool, RunCounters, SequentialScheduler, SetKey, StripedMemo, WaveVisible,
};
use cqi_solver::canon::{canonicalize, CanonKey, Canonical};
use cqi_solver::{CacheStats, Ent, Lit, Model, SaturatedState, SolverCache};

use crate::config::{CancelToken, ChaseConfig};
use crate::conjtree::expand_disj_node;
use crate::cover::coverage_of_cinstance_keys;
use crate::dnf::{has_quantifier, tree_to_conj};
use crate::treesat::{atom_to_lit, Hom, SatCtx};

/// Bound on retained saturated states (each is small — vectors over the
/// instance's nulls/literals — but runs can visit millions of instances).
const SAT_MEMO_CAP: usize = 200_000;

/// Entry bound of the shared (L2) canonical-problem memo — larger than one
/// worker's L1 capacity because it serves every worker of a session.
const SHARED_SOLVER_CAP: usize = 32_768;

/// Lock stripes of each shared memo (mirrors `ShardedDedupe`'s striping;
/// power of two).
const MEMO_STRIPES: usize = 64;

/// Bound on the subsumption-prune comparison set, total across coverage
/// classes. Scans do a cheap coverage-equality reject before any embedding
/// attempt, so the cap mostly bounds memory and the per-accept set-compare
/// count, not backtracking work.
const SUBSUME_VISIBLE_CAP: usize = 512;

/// Representatives staged per coverage class. The earliest accepts of a
/// class are the smallest (the BFS visits instances in size order), hence
/// the likeliest to embed into a later re-derivation — so a few early
/// representatives per class retain almost all pruning power while keeping
/// embedding attempts per accept at `class_cap` (not `visible_cap`).
const SUBSUME_CLASS_CAP: usize = 8;

/// Embedding attempts per nested-BFS result. Only same-coverage earlier
/// results are tried at all, and after this many failed backtracking
/// attempts the result is kept — pruning is best-effort, keeping is always
/// sound.
const NESTED_SUBSUME_ATTEMPTS: usize = 16;

/// [`exact_digest`] honoring [`ChaseConfig::digest_cache`]: the A/B knob
/// routes every chase-side digest probe to the memo-backed or the
/// from-scratch computation (same value either way).
fn digest_of(cfg: &ChaseConfig, inst: &CInstance) -> u64 {
    if cfg.digest_cache {
        exact_digest(inst)
    } else {
        exact_digest_fresh(inst)
    }
}

/// [`signature`] honoring [`ChaseConfig::digest_cache`]; twin of
/// [`digest_of`].
fn signature_of(cfg: &ChaseConfig, inst: &CInstance) -> u64 {
    if cfg.digest_cache {
        signature(inst)
    } else {
        signature_fresh(inst)
    }
}

/// Is `cand` a redundant re-derivation of an earlier-kept result of the
/// same nested search — same leaf coverage, and some kept result embeds
/// into it (seed-null prefix fixed)?
fn nested_subsumed(
    kept: &[CInstance],
    kept_covs: &[Coverage],
    cand: &CInstance,
    cov: &Coverage,
    fixed: usize,
) -> bool {
    let _s = trace::span_phase("subsume_nested", "chase", Phase::Dedupe);
    let mut attempts = 0usize;
    for (acc, acc_cov) in kept.iter().zip(kept_covs) {
        if acc_cov != cov || acc.size() > cand.size() {
            continue;
        }
        attempts += 1;
        if attempts > NESTED_SUBSUME_ATTEMPTS {
            return false;
        }
        if subsumes(acc, cand, fixed) {
            return true;
        }
    }
    false
}

/// The shared (L2) tier behind every worker's L1 memos: lock-striped maps
/// holding solver answers that are pure functions of their keys, so a
/// worker can reuse what a sibling already computed. An L1 miss checks
/// here before solving; a fresh decision is published here as well as to
/// the worker's own L1.
pub(crate) struct SharedMemos {
    /// Canonical-problem outcomes in canonical space (`None` = unsat) —
    /// the shared tier over [`SolverCache`]'s per-worker map.
    solver: StripedMemo<CanonKey, Option<Model>>,
    /// Saturated theory states by [`state_key`] — the shared tier over the
    /// per-worker `sat_memo`.
    sat: StripedMemo<u64, SaturatedState>,
}

impl Default for SharedMemos {
    fn default() -> SharedMemos {
        SharedMemos {
            solver: StripedMemo::new(MEMO_STRIPES, SHARED_SOLVER_CAP),
            sat: StripedMemo::new(MEMO_STRIPES, SAT_MEMO_CAP),
        }
    }
}

/// Execution counters of one chase run: scheduler waves, work-stealing
/// traffic, the hit/miss split of each memo tier, and dedupe volume.
/// Attached to every [`crate::CSolution`]; all counters are deltas over the
/// run (session-persistent caches are baselined at construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Frontier waves driven by the wave-parallel scheduler (0 under the
    /// sequential driver).
    pub waves: u64,
    /// Waves below the spill threshold, processed inline.
    pub spilled_waves: u64,
    /// Work-stealing queue steals across all fan-outs.
    pub steals: u64,
    /// Fan-out batches dispatched to the resident pool.
    pub resident_batches: u64,
    /// Fan-out batches run on per-call scoped threads.
    pub scoped_batches: u64,
    /// Duplicate-detection offers across all drives.
    pub dedupe_offers: u64,
    /// Offers rejected as duplicates.
    pub dedupe_duplicates: u64,
    /// Signature collisions needing a full isomorphism check.
    pub dedupe_iso_checks: u64,
    /// Per-worker (L1) canonical-problem memo hits/misses, summed.
    pub solver_l1_hits: u64,
    pub solver_l1_misses: u64,
    /// Shared (L2) canonical-problem memo counters.
    pub solver_l2: MemoCounts,
    /// Per-worker (L1) saturated-state lookups, summed.
    pub sat_l1_hits: u64,
    pub sat_l1_misses: u64,
    /// Shared (L2) saturated-state memo counters.
    pub sat_l2: MemoCounts,
    /// Chase steps decided by extending the parent's saturated state.
    pub incr_extends: u64,
    /// Chase steps that fell back to a full consistency check.
    pub incr_fallbacks: u64,
    /// Frontier subtrees skipped by homomorphic subsumption pruning
    /// (`ChaseConfig::subsume_prune`).
    pub subsumed_subtrees: u64,
    /// Exact-digest requests answered from the per-instance cache vs
    /// recomputed ([`cqi_instance::digest_stats`]).
    pub digest_hits: u64,
    pub digest_recomputes: u64,
    /// Wave-batched consistency problems (`ChaseConfig::wave_batch`,
    /// parallel driver): unique problems considered vs canonical
    /// equivalence classes actually resolved — `problems - classes` solver
    /// round-trips were deduplicated within waves.
    pub wave_batch_problems: u64,
    pub wave_batch_classes: u64,
    /// Wall-time phase breakdown (ns), populated only on traced runs
    /// (`ChaseConfig::trace`) — derived from the same `cqi-obs` span
    /// instrumentation as the Perfetto trace. Only *leaf* spans are
    /// phase-attributed, so the components never double-count and, on a
    /// single-threaded run, sum to ≤ total wall time (multi-thread runs
    /// sum per-thread time, which may exceed wall clock).
    pub phase_solver_ns: u64,
    /// Time canonicalizing solver problems (color refinement + keys).
    pub phase_canon_ns: u64,
    /// Time in isomorphism dedupe (offers/confirms + nested admission).
    pub phase_dedupe_ns: u64,
    /// Time in scheduling (wave assembly/merge, batch collection).
    pub phase_sched_ns: u64,
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

impl ChaseStats {
    pub fn solver_l1_hit_rate(&self) -> f64 {
        rate(self.solver_l1_hits, self.solver_l1_misses)
    }

    pub fn solver_l2_hit_rate(&self) -> f64 {
        rate(self.solver_l2.hits, self.solver_l2.misses)
    }

    pub fn sat_l1_hit_rate(&self) -> f64 {
        rate(self.sat_l1_hits, self.sat_l1_misses)
    }

    pub fn sat_l2_hit_rate(&self) -> f64 {
        rate(self.sat_l2.hits, self.sat_l2.misses)
    }

    /// Fraction of exact-digest requests served from the incremental cache.
    pub fn digest_hit_rate(&self) -> f64 {
        rate(self.digest_hits, self.digest_recomputes)
    }

    /// Fraction of wave-batched problems deduplicated into an already-seen
    /// canonical class (`0.0` when batching never engaged).
    pub fn wave_batch_dedupe_ratio(&self) -> f64 {
        if self.wave_batch_problems == 0 {
            0.0
        } else {
            1.0 - self.wave_batch_classes as f64 / self.wave_batch_problems as f64
        }
    }

    /// Sum of the phase-breakdown components (ns); `0` on untraced runs.
    pub fn phase_total_ns(&self) -> u64 {
        self.phase_solver_ns + self.phase_canon_ns + self.phase_dedupe_ns + self.phase_sched_ns
    }

    /// `(phase name, accumulated ns)` pairs, ordered like
    /// [`cqi_obs::trace::Phase::ALL`].
    pub fn phases(&self) -> [(&'static str, u64); 4] {
        [
            (Phase::Solver.name(), self.phase_solver_ns),
            (Phase::Canon.name(), self.phase_canon_ns),
            (Phase::Dedupe.name(), self.phase_dedupe_ns),
            (Phase::Sched.name(), self.phase_sched_ns),
        ]
    }

    /// Serde-free JSON rendering for benchmark/reproduce reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"waves\": {}, \"spilled_waves\": {}, \"steals\": {}, \
             \"resident_batches\": {}, \"scoped_batches\": {}, \
             \"dedupe_offers\": {}, \"dedupe_duplicates\": {}, \"dedupe_iso_checks\": {}, \
             \"solver_l1_hit_rate\": {:.4}, \"solver_l2_hit_rate\": {:.4}, \
             \"sat_l1_hit_rate\": {:.4}, \"sat_l2_hit_rate\": {:.4}, \
             \"l2_contended\": {}, \"incr_extends\": {}, \"incr_fallbacks\": {}, \
             \"subsumed_subtrees\": {}, \
             \"digest_cache\": {{\"hits\": {}, \"recomputes\": {}}}, \
             \"wave_batch\": {{\"problems\": {}, \"classes\": {}}}, \
             \"phases\": {{\"solver_ns\": {}, \"canonicalization_ns\": {}, \
             \"dedupe_ns\": {}, \"scheduling_ns\": {}}}}}",
            self.waves,
            self.spilled_waves,
            self.steals,
            self.resident_batches,
            self.scoped_batches,
            self.dedupe_offers,
            self.dedupe_duplicates,
            self.dedupe_iso_checks,
            self.solver_l1_hit_rate(),
            self.solver_l2_hit_rate(),
            self.sat_l1_hit_rate(),
            self.sat_l2_hit_rate(),
            self.solver_l2.contended + self.sat_l2.contended,
            self.incr_extends,
            self.incr_fallbacks,
            self.subsumed_subtrees,
            self.digest_hits,
            self.digest_recomputes,
            self.wave_batch_problems,
            self.wave_batch_classes,
            self.phase_solver_ns,
            self.phase_canon_ns,
            self.phase_dedupe_ns,
            self.phase_sched_ns,
        )
    }

    /// Adds this run's counters to the process-wide `cqi-obs` registry (the
    /// future `cqi-serve /metrics` payload). Deltas over monotone counters
    /// keep the registry monotone; call once per completed run.
    pub fn publish_metrics(&self) {
        use std::sync::OnceLock;
        struct Series {
            waves: std::sync::Arc<cqi_obs::Counter>,
            steals: std::sync::Arc<cqi_obs::Counter>,
            dedupe_offers: std::sync::Arc<cqi_obs::Counter>,
            dedupe_duplicates: std::sync::Arc<cqi_obs::Counter>,
            solver_l1_hits: std::sync::Arc<cqi_obs::Counter>,
            solver_l1_misses: std::sync::Arc<cqi_obs::Counter>,
            solver_l2_hits: std::sync::Arc<cqi_obs::Counter>,
            solver_l2_misses: std::sync::Arc<cqi_obs::Counter>,
            incr_extends: std::sync::Arc<cqi_obs::Counter>,
            incr_fallbacks: std::sync::Arc<cqi_obs::Counter>,
            subsumed: std::sync::Arc<cqi_obs::Counter>,
            digest_hits: std::sync::Arc<cqi_obs::Counter>,
            digest_recomputes: std::sync::Arc<cqi_obs::Counter>,
            wave_batch_problems: std::sync::Arc<cqi_obs::Counter>,
            wave_batch_classes: std::sync::Arc<cqi_obs::Counter>,
            phase_ns: [std::sync::Arc<cqi_obs::Counter>; 4],
        }
        static SERIES: OnceLock<Series> = OnceLock::new();
        let s = SERIES.get_or_init(|| {
            let r = cqi_obs::global();
            Series {
                waves: r.counter("cqi_chase_waves_total", "frontier waves driven", &[]),
                steals: r.counter("cqi_chase_steals_total", "work-stealing queue steals", &[]),
                dedupe_offers: r.counter("cqi_dedupe_offers_total", "iso-dedupe offers", &[]),
                dedupe_duplicates: r.counter(
                    "cqi_dedupe_duplicates_total",
                    "offers rejected as duplicates",
                    &[],
                ),
                solver_l1_hits: r.counter(
                    "cqi_solver_memo_lookups_total",
                    "canonical-problem memo lookups by tier and outcome",
                    &[("tier", "l1"), ("outcome", "hit")],
                ),
                solver_l1_misses: r.counter(
                    "cqi_solver_memo_lookups_total",
                    "canonical-problem memo lookups by tier and outcome",
                    &[("tier", "l1"), ("outcome", "miss")],
                ),
                solver_l2_hits: r.counter(
                    "cqi_solver_memo_lookups_total",
                    "canonical-problem memo lookups by tier and outcome",
                    &[("tier", "l2"), ("outcome", "hit")],
                ),
                solver_l2_misses: r.counter(
                    "cqi_solver_memo_lookups_total",
                    "canonical-problem memo lookups by tier and outcome",
                    &[("tier", "l2"), ("outcome", "miss")],
                ),
                incr_extends: r.counter(
                    "cqi_incremental_extends_total",
                    "chase steps decided by saturated-state extension",
                    &[],
                ),
                incr_fallbacks: r.counter(
                    "cqi_incremental_fallbacks_total",
                    "chase steps that fell back to a full solve",
                    &[],
                ),
                subsumed: r.counter(
                    "cqi_chase_subsumed_total",
                    "frontier subtrees skipped by subsumption pruning",
                    &[],
                ),
                digest_hits: r.counter(
                    "cqi_digest_cache_total",
                    "exact-digest requests by outcome",
                    &[("outcome", "hit")],
                ),
                digest_recomputes: r.counter(
                    "cqi_digest_cache_total",
                    "exact-digest requests by outcome",
                    &[("outcome", "recompute")],
                ),
                wave_batch_problems: r.counter(
                    "cqi_wave_batch_problems_total",
                    "unique consistency problems considered by wave batching",
                    &[],
                ),
                wave_batch_classes: r.counter(
                    "cqi_wave_batch_classes_total",
                    "canonical equivalence classes resolved by wave batching",
                    &[],
                ),
                phase_ns: [
                    r.counter("cqi_phase_ns_total", "traced time per phase (ns)", &[(
                        "phase",
                        Phase::Solver.name(),
                    )]),
                    r.counter("cqi_phase_ns_total", "traced time per phase (ns)", &[(
                        "phase",
                        Phase::Canon.name(),
                    )]),
                    r.counter("cqi_phase_ns_total", "traced time per phase (ns)", &[(
                        "phase",
                        Phase::Dedupe.name(),
                    )]),
                    r.counter("cqi_phase_ns_total", "traced time per phase (ns)", &[(
                        "phase",
                        Phase::Sched.name(),
                    )]),
                ],
            }
        });
        s.waves.add(self.waves);
        s.steals.add(self.steals);
        s.dedupe_offers.add(self.dedupe_offers);
        s.dedupe_duplicates.add(self.dedupe_duplicates);
        s.solver_l1_hits.add(self.solver_l1_hits);
        s.solver_l1_misses.add(self.solver_l1_misses);
        s.solver_l2_hits.add(self.solver_l2.hits);
        s.solver_l2_misses.add(self.solver_l2.misses);
        s.incr_extends.add(self.incr_extends);
        s.incr_fallbacks.add(self.incr_fallbacks);
        s.subsumed.add(self.subsumed_subtrees);
        s.digest_hits.add(self.digest_hits);
        s.digest_recomputes.add(self.digest_recomputes);
        s.wave_batch_problems.add(self.wave_batch_problems);
        s.wave_batch_classes.add(self.wave_batch_classes);
        s.phase_ns[0].add(self.phase_solver_ns);
        s.phase_ns[1].add(self.phase_canon_ns);
        s.phase_ns[2].add(self.phase_dedupe_ns);
        s.phase_ns[3].add(self.phase_sched_ns);
    }

    /// Accumulates another run's counters (workload-level aggregation in
    /// the bench harness).
    pub fn merge(&mut self, other: &ChaseStats) {
        let add = |a: &mut MemoCounts, b: MemoCounts| {
            a.hits += b.hits;
            a.misses += b.misses;
            a.inserts += b.inserts;
            a.contended += b.contended;
        };
        self.waves += other.waves;
        self.spilled_waves += other.spilled_waves;
        self.steals += other.steals;
        self.resident_batches += other.resident_batches;
        self.scoped_batches += other.scoped_batches;
        self.dedupe_offers += other.dedupe_offers;
        self.dedupe_duplicates += other.dedupe_duplicates;
        self.dedupe_iso_checks += other.dedupe_iso_checks;
        self.solver_l1_hits += other.solver_l1_hits;
        self.solver_l1_misses += other.solver_l1_misses;
        add(&mut self.solver_l2, other.solver_l2);
        self.sat_l1_hits += other.sat_l1_hits;
        self.sat_l1_misses += other.sat_l1_misses;
        add(&mut self.sat_l2, other.sat_l2);
        self.incr_extends += other.incr_extends;
        self.incr_fallbacks += other.incr_fallbacks;
        self.subsumed_subtrees += other.subsumed_subtrees;
        self.digest_hits += other.digest_hits;
        self.digest_recomputes += other.digest_recomputes;
        self.wave_batch_problems += other.wave_batch_problems;
        self.wave_batch_classes += other.wave_batch_classes;
        self.phase_solver_ns += other.phase_solver_ns;
        self.phase_canon_ns += other.phase_canon_ns;
        self.phase_dedupe_ns += other.phase_dedupe_ns;
        self.phase_sched_ns += other.phase_sched_ns;
    }
}

/// One-line human-readable summary — printed by `examples/streaming.rs`
/// and handy in logs: counters first, hit rates in parentheses, and the
/// traced phase breakdown (ms) when present.
impl std::fmt::Display for ChaseStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "waves={}({} spilled) steals={} batches={}r/{}s \
             dedupe={}/{}dup/{}iso solverL1={:.0}%({}) L2={:.0}%({}) \
             satL1={:.0}%({}) incr={}+{}fb subsumed={} digest={:.0}%({}) \
             batch={}cls/{}",
            self.waves,
            self.spilled_waves,
            self.steals,
            self.resident_batches,
            self.scoped_batches,
            self.dedupe_offers,
            self.dedupe_duplicates,
            self.dedupe_iso_checks,
            self.solver_l1_hit_rate() * 100.0,
            self.solver_l1_hits + self.solver_l1_misses,
            self.solver_l2_hit_rate() * 100.0,
            self.solver_l2.hits + self.solver_l2.misses,
            self.sat_l1_hit_rate() * 100.0,
            self.sat_l1_hits + self.sat_l1_misses,
            self.incr_extends,
            self.incr_fallbacks,
            self.subsumed_subtrees,
            self.digest_hit_rate() * 100.0,
            self.digest_hits + self.digest_recomputes,
            self.wave_batch_classes,
            self.wave_batch_problems,
        )?;
        if self.phase_total_ns() > 0 {
            let ms = |ns: u64| ns as f64 / 1e6;
            write!(
                f,
                " phases[solver={:.2}ms canon={:.2}ms dedupe={:.2}ms sched={:.2}ms]",
                ms(self.phase_solver_ns),
                ms(self.phase_canon_ns),
                ms(self.phase_dedupe_ns),
                ms(self.phase_sched_ns),
            )?;
        }
        Ok(())
    }
}

fn sub_counts(a: MemoCounts, b: MemoCounts) -> MemoCounts {
    MemoCounts {
        hits: a.hits - b.hits,
        misses: a.misses - b.misses,
        inserts: a.inserts - b.inserts,
        contended: a.contended - b.contended,
    }
}

/// Hot-path metric: every `IsConsistent` decision (memo hits included).
/// The counter is shard-per-worker ([`cqi_obs::Counter`]), so the always-on
/// cost is one uncontended relaxed add.
fn consistency_checks_metric() -> &'static cqi_obs::Counter {
    use std::sync::OnceLock;
    static C: OnceLock<std::sync::Arc<cqi_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        cqi_obs::global().counter(
            "cqi_consistency_checks_total",
            "IsConsistent decisions on the chase hot path (memo hits included)",
            &[],
        )
    })
}

/// Width of each nested-BFS wave, observed into a log-bucketed histogram
/// (drives the `nested_min_wave` tuning from ROADMAP item 2).
fn wave_width_metric() -> &'static cqi_obs::Histogram {
    use std::sync::OnceLock;
    static H: OnceLock<std::sync::Arc<cqi_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        cqi_obs::global().histogram(
            "cqi_nested_wave_width",
            "admitted width of nested-BFS waves",
            &[],
        )
    })
}

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Key for the saturated-state memo, derived from an already-computed
/// [`exact_digest`]. Unlike the digest alone (which is blind to nulls that
/// appear in no tuple/condition), this includes the null *type* vector: a
/// [`SaturatedState`] depends on every null's domain type, so instances
/// differing only in an unused null's type must not share a state.
fn state_key(digest: u64, inst: &CInstance) -> u64 {
    hash_of(&(digest, inst.null_types()))
}

/// Per-worker mutable chase state: every memo the search consults, plus the
/// worker-local slice of the run counters. None of it changes *answers* —
/// only how fast they are reached — which is what makes frontier candidates
/// expandable on any worker while keeping parallel output identical to
/// sequential.
pub(crate) struct WorkerCtx {
    /// Memoized sub-BFS results keyed by (subtree, instance digest,
    /// relevant homomorphism entries). The recursion re-derives identical
    /// sub-searches constantly; this cache is the difference between
    /// seconds and minutes on the harder difference queries.
    bfs_memo: HashMap<(u64, u64, u64), Vec<CInstance>>,
    /// Memoized `IsConsistent` answers by instance digest.
    consist_memo: HashMap<u64, bool>,
    /// Canonical-problem memo: isomorphic subproblems (renamed nulls, extra
    /// unconstrained nulls) are decided once (`cfg.solver_cache`).
    solver_cache: SolverCache,
    /// Saturated theory state per (pure-conjunctive) instance digest,
    /// extended by delta literals on single chase steps
    /// (`cfg.incremental`).
    sat_memo: HashMap<u64, SaturatedState>,
    /// The session's shared (L2) memo tier behind `solver_cache` and
    /// `sat_memo`.
    shared: Arc<SharedMemos>,
    /// Whether this run consults/feeds the L2 tier (multi-thread runs
    /// only — a lone worker has no sibling to share with, so L2 traffic
    /// would be pure overhead).
    share_l2: bool,
    /// Contexts for nested-BFS fan-out (`Engine::expand_wave`): lazily
    /// built, persisted here so their memos warm up across waves. They
    /// share this context's `shared` tier.
    scratch: Vec<WorkerCtx>,
    /// `sat_memo` lookups that hit / missed (the L1 side of the tiered
    /// saturated-state memo).
    sat_l1_hits: u64,
    sat_l1_misses: u64,
    /// Chase steps decided by extending the parent's saturated state.
    incr_extends: usize,
    /// Nested-BFS results dropped by the subsumption cut (each one skipped
    /// the downstream chases it would have seeded — a whole subtree).
    subsumed: u64,
    /// Chase steps that fell back to the full check (keys, negative
    /// conditions, or no reusable parent state).
    incr_fallbacks: usize,
    /// This worker observed the wall-clock deadline.
    timed_out: bool,
    /// This worker observed a fired [`CancelToken`].
    cancelled: bool,
}

impl WorkerCtx {
    fn new(cfg: &ChaseConfig, shared: Arc<SharedMemos>) -> WorkerCtx {
        WorkerCtx {
            bfs_memo: HashMap::new(),
            consist_memo: HashMap::new(),
            solver_cache: SolverCache::new(cfg.solver_cache_capacity),
            sat_memo: HashMap::new(),
            shared,
            share_l2: false,
            scratch: Vec::new(),
            sat_l1_hits: 0,
            sat_l1_misses: 0,
            incr_extends: 0,
            subsumed: 0,
            incr_fallbacks: 0,
            timed_out: false,
            cancelled: false,
        }
    }

    /// Clears the per-run flags while keeping every memo warm — the reuse
    /// contract of [`ChaseCaches`].
    fn reset_run_flags(&mut self) {
        self.timed_out = false;
        self.cancelled = false;
        for c in &mut self.scratch {
            c.reset_run_flags();
        }
    }

    /// Sets per-run L2 participation, recursively (scratch contexts follow
    /// their owner).
    fn set_share_l2(&mut self, on: bool) {
        self.share_l2 = on;
        for c in &mut self.scratch {
            c.set_share_l2(on);
        }
    }

    /// Clears the param-sensitive memos (see [`CacheParams`]), recursively.
    fn clear_param_memos(&mut self) {
        self.bfs_memo.clear();
        self.consist_memo.clear();
        for c in &mut self.scratch {
            c.clear_param_memos();
        }
    }

    /// Visits this context and every (transitive) scratch context — the
    /// stat sums must see nested-BFS workers too.
    fn visit<'s>(&'s self, f: &mut dyn FnMut(&'s WorkerCtx)) {
        f(self);
        for c in &self.scratch {
            c.visit(f);
        }
    }
}

/// The answer-affecting run parameters the `bfs_memo`/`consist_memo`
/// contents were computed under. The sub-BFS results depend on the size
/// `limit` (pruning inside `bfs_inner`) and on `universal_fresh`
/// (`Handle-Universal`'s fresh-null branch), and consistency answers
/// depend on `enforce_keys` — so entries are only reusable by a run with
/// the *same* triple. The canonical-problem memo and the saturated-state
/// snapshots are parameter-independent (the canonical problem encodes the
/// key clauses; a saturated state derives purely from literals) and stay
/// warm across any parameter change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CacheParams {
    limit: usize,
    enforce_keys: bool,
    universal_fresh: bool,
    /// Identity of the schema the memoized digests were computed under
    /// (instance digests are only comparable within one schema; a
    /// pre-parsed `QueryInput::Tree` may carry a different schema than the
    /// session's).
    schema: usize,
}

/// Opaque, reusable chase worker state: the solver memos, saturated-state
/// snapshots, and sub-BFS caches of every worker context. All of it is
/// *speed-only* state (it never changes answers — the invariant the
/// parallel runtime already relies on), and none of it depends on the
/// query, only on the schema's instances, so a `cqi::Session` keeps one
/// across explain calls: repeated or similar queries over one schema hit
/// warm caches instead of re-deriving every `IsConsistent` answer.
/// Memos whose entries *are* sensitive to run parameters are fingerprinted
/// by [`CacheParams`] and cleared when a reusing run differs.
#[derive(Default)]
pub struct ChaseCaches {
    ctxs: Vec<WorkerCtx>,
    params: Option<CacheParams>,
    /// The shared (L2) memo tier every worker context points at.
    shared: Arc<SharedMemos>,
    /// The session's resident worker pool, spawned once (lazily, on the
    /// first parallel run) and reused by every subsequent run. `None`
    /// until then — pool-less chases fan out on per-call scoped threads.
    pool: Option<Arc<ResidentPool>>,
}

impl ChaseCaches {
    pub fn new() -> ChaseCaches {
        ChaseCaches::default()
    }

    /// Spawns (or resizes) the resident pool backing a `threads`-wide run:
    /// `threads - 1` parked workers, the calling thread being the last
    /// participant. Called by the session-backed entry points; one-shot
    /// [`Chase::new`] never spawns a pool and keeps the scoped fallback.
    pub fn ensure_pool(&mut self, threads: usize) {
        let helpers = threads.saturating_sub(1);
        if helpers == 0 {
            return;
        }
        if self.pool.as_ref().map(|p| p.workers()) != Some(helpers) {
            self.pool = Some(Arc::new(ResidentPool::new(helpers)));
        }
    }
}

/// One top-level root search: a (sub)formula chased from a seed instance
/// under pre-bound output variables. `run_variant` batches these —
/// one per conjunctive tree, plus one per (uncovered leaf × tree) in the
/// `*-Add` phase — and [`Chase::run_roots`] fans the batch out across
/// workers when the config allows.
pub struct RootJob<'f> {
    pub formula: &'f Formula,
    pub seed: CInstance,
    pub h: Hom,
}

/// One entry of [`Chase::accepted`]: the instance, its wall-clock
/// acceptance offset, and — when the subsumption filter computed it at
/// the sink — the instance's leaf coverage.
pub type AcceptedInstance = (CInstance, Duration, Option<Coverage>);

/// One chase run (possibly over several trees, for the `Conj-*` and `*-Add`
/// variants, which all feed the same accepted-instance log).
pub struct Chase<'a> {
    pub query: &'a Query,
    pub cfg: &'a ChaseConfig,
    /// Whether `Handle-Universal` may mint fresh labeled nulls
    /// (the `EO` variants disable this).
    pub universal_fresh: bool,
    pub start: Instant,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    pub timed_out: bool,
    /// A [`CancelToken`] fired mid-drive.
    pub cancelled: bool,
    /// An acceptance observer returned `false` (the streaming consumer
    /// stopped), halting the drive early. Distinct from the `max_results`
    /// cap, which is a *requested* completion.
    pub halted: bool,
    done: bool,
    /// Satisfying consistent instances accepted at the top level, with
    /// acceptance timestamps (drives the §5.1 interactivity metrics) and —
    /// when the subsumption filter already paid for it — the instance's
    /// leaf coverage, reused by validation and the `*-Add` re-seed scan.
    pub accepted: Vec<AcceptedInstance>,
    /// Resolved thread budget (`cfg.threads`, 0 ⇒ available parallelism).
    threads: usize,
    /// One memo context per worker; `ctxs[0]` doubles as the sequential
    /// context.
    ctxs: Vec<WorkerCtx>,
    /// The session's resident pool, if one was spawned (see
    /// [`ChaseCaches::ensure_pool`]); `None` falls back to scoped threads.
    pool: Option<Arc<ResidentPool>>,
    /// The shared (L2) memo tier, for the stats snapshot.
    shared: Arc<SharedMemos>,
    /// Steal/batch counters of this run's fan-outs.
    run_counters: RunCounters,
    /// Wave/dedupe totals accumulated over this run's drives.
    drive_acc: DriveStats,
    /// Subsumption-pruned subtrees over this run's drives (the task-local
    /// counter is read back after each drive).
    subsumed: u64,
    /// Wave-batch problem/class totals over this run's drives.
    wave_problems: u64,
    wave_classes: u64,
    /// Cumulative cache counters at construction — subtracted so
    /// [`Chase::stats`] reports per-run deltas despite session-persistent
    /// caches.
    stats_base: ChaseStats,
    /// [`cqi_obs::trace::phase_totals`] at construction (the accumulators
    /// are process-global and monotone; the delta is this run's traced
    /// phase breakdown).
    phase_base: [u64; 4],
    /// Hash of the query's variable table (names + domains). Folded into
    /// the sub-BFS memo key: two queries can share a formula *shape*
    /// (identical `VarId` structure) while naming/typing their variables
    /// differently, and fresh nulls inherit `query.var_name`/`var_domain`
    /// — so shape alone must not hit another query's cached results when
    /// a session reuses [`ChaseCaches`].
    query_key: u64,
}

impl<'a> Chase<'a> {
    pub fn new(query: &'a Query, cfg: &'a ChaseConfig, universal_fresh: bool) -> Chase<'a> {
        Chase::new_reusing(query, cfg, universal_fresh, &mut ChaseCaches::new())
    }

    /// Like [`Chase::new`], but the worker contexts are taken from `caches`
    /// (topped up with fresh ones if the thread budget grew); pair with
    /// [`Chase::recycle_into`] to return them warm after the run. Reused
    /// contexts keep the solver-cache capacity they were created with.
    pub fn new_reusing(
        query: &'a Query,
        cfg: &'a ChaseConfig,
        universal_fresh: bool,
        caches: &mut ChaseCaches,
    ) -> Chase<'a> {
        // lint:allow(wall-clock) per-drive elapsed time feeds `ChaseStats`, not control flow
        let start = Instant::now();
        let threads = cfg.resolved_threads().max(1);
        let params = CacheParams {
            limit: cfg.limit,
            enforce_keys: cfg.enforce_keys,
            universal_fresh,
            schema: std::sync::Arc::as_ptr(&query.schema) as *const u8 as usize,
        };
        let param_safe = caches.params == Some(params);
        caches.params = Some(params);
        let mut ctxs: Vec<WorkerCtx> = std::mem::take(&mut caches.ctxs);
        ctxs.truncate(threads);
        for ctx in &mut ctxs {
            ctx.reset_run_flags();
            // A lone worker has no sibling to share solver answers with.
            ctx.set_share_l2(threads > 1);
            if !param_safe {
                // These memos' answers depend on the run parameters (see
                // [`CacheParams`]); a differing run must not see them.
                ctx.clear_param_memos();
            }
        }
        while ctxs.len() < threads {
            let mut ctx = WorkerCtx::new(cfg, Arc::clone(&caches.shared));
            ctx.share_l2 = threads > 1;
            ctxs.push(ctx);
        }
        let query_key = {
            let mut h = DefaultHasher::new();
            for v in &query.vars {
                v.name.hash(&mut h);
                v.domain.index().hash(&mut h);
            }
            h.finish()
        };
        let mut chase = Chase {
            query,
            cfg,
            universal_fresh,
            start,
            deadline: cfg.timeout.map(|t| start + t),
            cancel: cfg.cancel.clone(),
            timed_out: false,
            cancelled: false,
            halted: false,
            done: false,
            accepted: Vec::new(),
            threads,
            ctxs,
            pool: caches.pool.clone(),
            shared: Arc::clone(&caches.shared),
            run_counters: RunCounters::default(),
            drive_acc: DriveStats::default(),
            subsumed: 0,
            wave_problems: 0,
            wave_classes: 0,
            stats_base: ChaseStats::default(),
            phase_base: trace::phase_totals(),
            query_key,
        };
        chase.stats_base = chase.cumulative_stats();
        chase
    }

    /// Hands the worker contexts (with every memo warm) back to `caches`
    /// for the next run.
    pub fn recycle_into(self, caches: &mut ChaseCaches) {
        caches.ctxs = self.ctxs;
    }

    /// Hit/miss/eviction counters of the canonical-problem memo, summed
    /// over all worker contexts (nested-BFS scratch contexts included).
    pub fn solver_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        self.visit_ctxs(&mut |c| {
            total.hits += c.solver_cache.stats.hits;
            total.misses += c.solver_cache.stats.misses;
            total.evictions += c.solver_cache.stats.evictions;
        });
        total
    }

    /// Chase steps decided by extending the parent's saturated state
    /// (summed over workers).
    pub fn incr_extends(&self) -> usize {
        let mut n = 0;
        self.visit_ctxs(&mut |c| n += c.incr_extends);
        n
    }

    /// Chase steps that fell back to the full consistency check (summed
    /// over workers).
    pub fn incr_fallbacks(&self) -> usize {
        let mut n = 0;
        self.visit_ctxs(&mut |c| n += c.incr_fallbacks);
        n
    }

    fn visit_ctxs<'s>(&'s self, f: &mut dyn FnMut(&'s WorkerCtx)) {
        for c in &self.ctxs {
            c.visit(f);
        }
    }

    /// Every counter at its current cumulative value (caches persist
    /// across session runs; [`Chase::stats`] subtracts the construction
    /// baseline).
    fn cumulative_stats(&self) -> ChaseStats {
        let counters = self.run_counters.snapshot();
        // Process-global cumulative; the per-run delta comes out of the
        // `stats_base` subtraction like every other persistent counter.
        let (digest_hits, digest_recomputes) = digest_stats::snapshot();
        let mut s = ChaseStats {
            subsumed_subtrees: self.subsumed,
            digest_hits,
            digest_recomputes,
            wave_batch_problems: self.wave_problems,
            wave_batch_classes: self.wave_classes,
            waves: self.drive_acc.waves,
            spilled_waves: self.drive_acc.spilled_waves,
            steals: counters.steals,
            resident_batches: counters.resident_batches,
            scoped_batches: counters.scoped_batches,
            dedupe_offers: self.drive_acc.dedupe.offers,
            dedupe_duplicates: self.drive_acc.dedupe.duplicates,
            dedupe_iso_checks: self.drive_acc.dedupe.iso_checks,
            solver_l2: self.shared.solver.stats.snapshot(),
            sat_l2: self.shared.sat.stats.snapshot(),
            ..ChaseStats::default()
        };
        self.visit_ctxs(&mut |c| {
            s.subsumed_subtrees += c.subsumed;
            s.solver_l1_hits += c.solver_cache.stats.hits;
            s.solver_l1_misses += c.solver_cache.stats.misses;
            s.sat_l1_hits += c.sat_l1_hits;
            s.sat_l1_misses += c.sat_l1_misses;
            s.incr_extends += c.incr_extends as u64;
            s.incr_fallbacks += c.incr_fallbacks as u64;
        });
        s
    }

    /// This run's execution counters (see [`ChaseStats`]): drive totals
    /// plus per-run deltas of the session-persistent cache counters.
    pub fn stats(&self) -> ChaseStats {
        let cur = self.cumulative_stats();
        let base = &self.stats_base;
        let phases = trace::phase_totals();
        ChaseStats {
            phase_solver_ns: phases[0].saturating_sub(self.phase_base[0]),
            phase_canon_ns: phases[1].saturating_sub(self.phase_base[1]),
            phase_dedupe_ns: phases[2].saturating_sub(self.phase_base[2]),
            phase_sched_ns: phases[3].saturating_sub(self.phase_base[3]),
            waves: cur.waves,
            spilled_waves: cur.spilled_waves,
            steals: cur.steals,
            resident_batches: cur.resident_batches,
            scoped_batches: cur.scoped_batches,
            dedupe_offers: cur.dedupe_offers,
            dedupe_duplicates: cur.dedupe_duplicates,
            dedupe_iso_checks: cur.dedupe_iso_checks,
            solver_l1_hits: cur.solver_l1_hits - base.solver_l1_hits,
            solver_l1_misses: cur.solver_l1_misses - base.solver_l1_misses,
            solver_l2: sub_counts(cur.solver_l2, base.solver_l2),
            sat_l1_hits: cur.sat_l1_hits - base.sat_l1_hits,
            sat_l1_misses: cur.sat_l1_misses - base.sat_l1_misses,
            sat_l2: sub_counts(cur.sat_l2, base.sat_l2),
            incr_extends: cur.incr_extends - base.incr_extends,
            incr_fallbacks: cur.incr_fallbacks - base.incr_fallbacks,
            subsumed_subtrees: cur.subsumed_subtrees - base.subsumed_subtrees,
            // Saturating: the digest counters are process-global, so a
            // concurrent run elsewhere in the process can only inflate the
            // delta, never underflow it — but stay defensive.
            digest_hits: cur.digest_hits.saturating_sub(base.digest_hits),
            digest_recomputes: cur.digest_recomputes.saturating_sub(base.digest_recomputes),
            wave_batch_problems: cur.wave_batch_problems - base.wave_batch_problems,
            wave_batch_classes: cur.wave_batch_classes - base.wave_batch_classes,
        }
    }

    fn absorb_drive(&mut self, st: DriveStats) {
        self.drive_acc.waves += st.waves;
        self.drive_acc.spilled_waves += st.spilled_waves;
        self.drive_acc.dedupe.offers += st.dedupe.offers;
        self.drive_acc.dedupe.duplicates += st.dedupe.duplicates;
        self.drive_acc.dedupe.iso_checks += st.dedupe.iso_checks;
    }

    fn deadline_passed(&self) -> bool {
        // lint:allow(wall-clock) deadline enforcement needs a real clock
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn cancel_fired(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    fn collect_ctx_flags(&mut self) {
        self.timed_out |= self.ctxs.iter().any(|c| c.timed_out);
        self.cancelled |= self.ctxs.iter().any(|c| c.cancelled);
    }

    /// Runs Algorithm 1 on `formula` from `seed`/`seed_h` as the top level,
    /// logging accepted instances. A single root drives the frontier
    /// scheduler directly (wave-parallel when `threads > 1`).
    pub fn run_root(&mut self, formula: &Formula, seed: CInstance, seed_h: Hom) {
        self.run_root_observed(formula, seed, seed_h, &mut |_, _, _| true);
    }

    /// [`Chase::run_root`] with an acceptance observer: `observer` is
    /// called with every instance (and its acceptance timestamp) the moment
    /// it enters the log — per item sequentially, per wave under the
    /// wave-parallel scheduler — in the same deterministic order as the
    /// final `accepted` log. Returning `false` halts the drive (the
    /// streaming API's consumer-gone/cancel path).
    pub fn run_root_observed(
        &mut self,
        formula: &Formula,
        seed: CInstance,
        seed_h: Hom,
        observer: &mut dyn FnMut(&CInstance, Duration, Option<&Coverage>) -> bool,
    ) {
        if self.done {
            return;
        }
        if self.deadline_passed() {
            self.timed_out = true;
            return;
        }
        if self.cancel_fired() {
            self.cancelled = true;
            return;
        }
        let _root_span = trace::span("root_job", "chase");
        let (i0, h0) = bind_free_vars(self.query, formula, seed, seed_h);
        let exec = match self.pool.as_deref() {
            Some(p) if self.threads > 1 => Exec::resident(p),
            _ => Exec::scoped(),
        }
        .with_counters(&self.run_counters);
        let task = RootTask {
            query: self.query,
            cfg: self.cfg,
            universal_fresh: self.universal_fresh,
            deadline: self.deadline,
            cancel: self.cancel.as_ref(),
            formula,
            h0: &h0,
            query_key: self.query_key,
            exec,
            subsume: SubsumePrune::for_seed(self.cfg, &i0),
            pruned: AtomicU64::new(0),
            wave_problems: AtomicU64::new(0),
            wave_classes: AtomicU64::new(0),
        };
        let start = self.start;
        let max = self.cfg.max_results;
        let accepted = &mut self.accepted;
        let mut done = false;
        let mut halted = false;
        let mut sink = |(inst, cov): (CInstance, Option<Coverage>)| {
            let t = start.elapsed();
            let keep_streaming = observer(&inst, t, cov.as_ref());
            accepted.push((inst, t, cov));
            if !keep_streaming {
                halted = true;
                done = true;
                return false;
            }
            if max.is_some_and(|m| accepted.len() >= m) {
                done = true;
                false
            } else {
                true
            }
        };
        let drive_stats = if self.threads <= 1 {
            SequentialScheduler.drive(exec, &task, &mut self.ctxs, vec![i0], &mut sink)
        } else {
            ParallelScheduler::new(self.cfg.parallel_min_frontier).drive(
                exec,
                &task,
                &mut self.ctxs,
                vec![i0],
                &mut sink,
            )
        };
        let (pruned, wave_problems, wave_classes) = (
            task.pruned.load(Ordering::SeqCst),
            task.wave_problems.load(Ordering::SeqCst),
            task.wave_classes.load(Ordering::SeqCst),
        );
        self.absorb_drive(drive_stats);
        self.subsumed += pruned;
        self.wave_problems += wave_problems;
        self.wave_classes += wave_classes;
        self.done |= done;
        self.halted |= halted;
        self.collect_ctx_flags();
    }

    /// Runs a batch of independent root searches. With a thread budget and
    /// more than one job, whole roots are fanned out across workers (each
    /// driven sequentially on its worker's context) and the accepted
    /// instances are merged in job order — identical output to running the
    /// jobs one by one.
    pub fn run_roots(&mut self, jobs: Vec<RootJob<'_>>) {
        self.run_roots_observed(jobs, &mut |_, _, _| true);
    }

    /// [`Chase::run_roots`] with an acceptance observer (see
    /// [`Chase::run_root_observed`]). Under job-level fan-out the observer
    /// fires at the deterministic job-order merge.
    pub fn run_roots_observed(
        &mut self,
        jobs: Vec<RootJob<'_>>,
        observer: &mut dyn FnMut(&CInstance, Duration, Option<&Coverage>) -> bool,
    ) {
        if jobs.is_empty() || self.done {
            return;
        }
        if self.threads > 1 && jobs.len() > 1 {
            self.run_roots_parallel(jobs, observer);
        } else {
            for job in jobs {
                if self.timed_out || self.cancelled || self.done {
                    break;
                }
                self.run_root_observed(job.formula, job.seed, job.h, observer);
            }
        }
    }

    fn run_roots_parallel(
        &mut self,
        jobs: Vec<RootJob<'_>>,
        observer: &mut dyn FnMut(&CInstance, Duration, Option<&Coverage>) -> bool,
    ) {
        let query = self.query;
        let cfg = self.cfg;
        let universal_fresh = self.universal_fresh;
        let deadline = self.deadline;
        let cancel = self.cancel.clone();
        let max = cfg.max_results;
        let start = self.start;
        let query_key = self.query_key;
        let exec = match self.pool.as_deref() {
            Some(p) => Exec::resident(p),
            None => Exec::scoped(),
        }
        .with_counters(&self.run_counters);
        let _fanout_span = trace::span("root_job_fanout", "chase");
        let per_job: Vec<(Vec<AcceptedInstance>, DriveStats, u64)> =
            exec.run(&mut self.ctxs, &jobs, |ctx, _, job| {
                let _job_span = trace::span("root_job", "chase");
                // lint:allow(wall-clock) deadline enforcement needs a real clock
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    ctx.timed_out = true;
                    return (Vec::new(), DriveStats::default(), 0);
                }
                if cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled)
                {
                    ctx.cancelled = true;
                    return (Vec::new(), DriveStats::default(), 0);
                }
                let (i0, h0) =
                    bind_free_vars(query, job.formula, job.seed.clone(), job.h.clone());
                let task = RootTask {
                    query,
                    cfg,
                    universal_fresh,
                    deadline,
                    cancel: cancel.as_ref(),
                    formula: job.formula,
                    h0: &h0,
                    query_key,
                    exec,
                    subsume: SubsumePrune::for_seed(cfg, &i0),
                    pruned: AtomicU64::new(0),
                    wave_problems: AtomicU64::new(0),
                    wave_classes: AtomicU64::new(0),
                };
                let mut acc: Vec<AcceptedInstance> = Vec::new();
                let mut sink = |(inst, cov): (CInstance, Option<Coverage>)| {
                    // Timestamp at the moment of acceptance, not at merge —
                    // the §5.1 interactivity metrics read these.
                    acc.push((inst, start.elapsed(), cov));
                    // No single job ever needs more than the global cap.
                    max.is_none_or(|m| acc.len() < m)
                };
                let st = SequentialScheduler.drive(
                    exec,
                    &task,
                    std::slice::from_mut(ctx),
                    vec![i0],
                    &mut sink,
                );
                let pruned = task.pruned.load(Ordering::SeqCst);
                (acc, st, pruned)
            });
        // Deterministic merge: job order, truncated at the global cap
        // exactly where a sequential run would have stopped. (The log stays
        // in job order; timestamps are wall-clock and may interleave across
        // jobs, as they legitimately do.) The observer fires here, at the
        // merge point — job-level fan-out is a batch barrier, unlike the
        // per-wave flushing of the wave-parallel scheduler.
        'merge: for (acc, st, pruned) in per_job {
            self.absorb_drive(st);
            self.subsumed += pruned;
            for (inst, t, cov) in acc {
                let keep_streaming = observer(&inst, t, cov.as_ref());
                self.accepted.push((inst, t, cov));
                if !keep_streaming {
                    self.halted = true;
                    self.done = true;
                    break 'merge;
                }
                if max.is_some_and(|m| self.accepted.len() >= m) {
                    self.done = true;
                    break 'merge;
                }
            }
        }
        self.collect_ctx_flags();
    }

}

/// Lines 2–5 of Algorithm 1: bind unbound free variables to fresh labeled
/// nulls.
fn bind_free_vars(
    query: &Query,
    formula: &Formula,
    mut inst: CInstance,
    mut h: Hom,
) -> (CInstance, Hom) {
    h.resize(query.vars.len(), None);
    for v in formula.free_vars() {
        if h[v.index()].is_none() {
            let d = query.var_domain(v);
            let n = inst.fresh_null(query.var_name(v), d);
            h[v.index()] = Some(Ent::Null(n));
        }
    }
    (inst, h)
}

/// The top-level frontier of one root search, as a [`FrontierTask`]: admit
/// by the size limit, dedupe by the [`signature`]/[`exact_digest`]
/// iso-invariants with [`is_isomorphic`] confirming collisions, and expand
/// via `Tree-SAT` + `IsConsistent` + `Tree-Chase` on the worker's context.
struct RootTask<'t> {
    query: &'t Query,
    cfg: &'t ChaseConfig,
    universal_fresh: bool,
    deadline: Option<Instant>,
    cancel: Option<&'t CancelToken>,
    formula: &'t Formula,
    h0: &'t Hom,
    query_key: u64,
    /// Thread source for nested-BFS fan-out inside [`Engine`].
    exec: Exec<'t>,
    /// Subsumption-prune state (`None` when `cfg.subsume_prune` is off).
    subsume: Option<SubsumePrune>,
    /// Subtrees pruned this drive; read back by [`Chase`] afterwards.
    pruned: AtomicU64,
    /// Wave-batching totals this drive (unique problems / canonical
    /// classes); read back by [`Chase`] afterwards.
    wave_problems: AtomicU64,
    wave_classes: AtomicU64,
}

/// Prune state of one root drive: the accepted instances published at wave
/// boundaries, plus the seed-null prefix every instance of this root
/// shares.
struct SubsumePrune {
    /// Accepted instances with their leaf coverage, staged in sink order
    /// and published at wave boundaries — so a prune decision only ever
    /// sees accepts from strictly earlier BFS generations, identically
    /// under the sequential and parallel drivers.
    visible: WaveVisible<(CInstance, Coverage)>,
    /// Number of seed nulls (the bound free variables). They denote the
    /// same entities in every instance of this root, so an embedding must
    /// map them identically rather than renaming them.
    fixed: usize,
}

impl SubsumePrune {
    fn for_seed(cfg: &ChaseConfig, seed: &CInstance) -> Option<SubsumePrune> {
        cfg.subsume_prune.then(|| SubsumePrune {
            visible: WaveVisible::new(),
            fixed: seed.num_nulls(),
        })
    }
}

impl FrontierTask for RootTask<'_> {
    type Item = CInstance;
    type Ctx = WorkerCtx;
    /// Accepted instance plus its leaf coverage when the subsumption filter
    /// already computed it (reused downstream; `None` with pruning off).
    type Accept = (CInstance, Option<Coverage>);

    fn admit(&self, inst: &CInstance) -> bool {
        inst.size() <= self.cfg.limit
    }

    fn keys(&self, inst: &CInstance) -> SetKey {
        SetKey {
            signature: signature_of(self.cfg, inst),
            digest: digest_of(self.cfg, inst),
        }
    }

    fn is_duplicate(&self, a: &CInstance, b: &CInstance) -> bool {
        is_isomorphic(a, b)
    }

    fn stopped(&self, ctx: &mut WorkerCtx) -> bool {
        // lint:allow(wall-clock) deadline enforcement needs a real clock
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            ctx.timed_out = true;
            return true;
        }
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            ctx.cancelled = true;
            return true;
        }
        false
    }

    fn expand(
        &self,
        ctx: &mut WorkerCtx,
        inst: &CInstance,
    ) -> Expansion<CInstance, (CInstance, Option<Coverage>)> {
        let mut engine = Engine {
            query: self.query,
            cfg: self.cfg,
            universal_fresh: self.universal_fresh,
            deadline: self.deadline,
            cancel: self.cancel,
            query_key: self.query_key,
            exec: self.exec,
            ctx,
        };
        // Subsumption cut (checked before the accept test): when a visible,
        // already-accepted instance of this root embeds into this one *and*
        // covers exactly the same query leaves, this instance is dead work:
        // if it satisfies, it is a strictly larger re-derivation of the same
        // conditional answer (`minimize` keeps the earlier, smaller accept,
        // and the covered-leaf union feeding the `*-Add` re-seed phase is
        // unchanged), and its subtree is moot either way because accepted
        // instances are never expanded. Coverage equality is essential: a
        // superset with *new* coverage is a distinct answer and must
        // survive. The visible set holds only boundary-published accepts
        // (strictly earlier waves), so sequential and parallel drives prune
        // identically. The popped instance's coverage is computed lazily,
        // only once some accept actually embeds — failed embeddings stay
        // cheap (budgeted backtracking, no Tree-SAT).
        if let Some(sub) = &self.subsume {
            let visible = sub.visible.snapshot();
            if !visible.is_empty() {
                let _s = trace::span_phase("subsume_check", "chase", Phase::Dedupe);
                let mut cov: Option<Coverage> = None;
                for (acc, acc_cov) in visible.iter() {
                    if subsumes(acc, inst, sub.fixed) {
                        let c = cov.get_or_insert_with(|| {
                            coverage_of_cinstance_keys(self.query, inst, self.cfg.enforce_keys)
                        });
                        if c == acc_cov {
                            self.pruned.fetch_add(1, Ordering::SeqCst);
                            return Expansion {
                                accepted: None,
                                children: Vec::new(),
                            };
                        }
                    }
                }
            }
        }
        // Line 13: Tree-SAT under the root homomorphism ∧ IsConsistent(I).
        let sat = SatCtx::new(self.query, inst, self.cfg.enforce_keys).tree_sat(self.formula, self.h0);
        if sat && engine.consistent(inst) {
            return Expansion {
                accepted: Some((inst.clone(), None)),
                children: Vec::new(),
            };
        }
        // Lines 16–19: expand.
        let mut children = Vec::new();
        for j in engine.tree_chase(self.formula, inst, self.h0) {
            if engine.stopped() {
                break;
            }
            if j.size() <= self.cfg.limit && engine.consistent(&j) {
                children.push(j);
            }
        }
        Expansion {
            accepted: None,
            children,
        }
    }

    /// Sink-point subsumption filter. Accept-heavy workloads produce most
    /// of their accepts as *same-wave siblings*, which the expand-time
    /// pre-check above structurally cannot see (it reads only
    /// boundary-published state). Both drivers call `note_accept` at their
    /// single FIFO merge point on the driving thread, so here the candidate
    /// can be compared against every earlier-kept accept — published *and*
    /// staged — and the kept stream is identical under sequential and
    /// parallel drives. Dropping an accept `D` subsumed by an earlier-kept
    /// `A` with equal coverage is output-preserving: `minimize` keeps the
    /// minimum-size instance per coverage with earliest-acceptance
    /// tie-break, and `A ↪ D` forces `|A| ≤ |D|`, so `D` never wins; the
    /// covered-leaf union feeding the `*-Add` re-seed phase is unchanged
    /// because `cov(D) = cov(A)` contributes nothing new.
    ///
    /// The coverage computed here is attached to the kept accept, so the
    /// downstream validation/`*-Add` consumers reuse it instead of
    /// recomputing — with pruning on, the filter's coverage work *replaces*
    /// the sink's, it does not add to it.
    fn note_accept(&self, accepted: &mut (CInstance, Option<Coverage>)) -> bool {
        let Some(sub) = &self.subsume else { return true };
        let (inst, cov_slot) = accepted;
        let _s = trace::span_phase("subsume_sink", "chase", Phase::Dedupe);
        let cov = coverage_of_cinstance_keys(self.query, inst, self.cfg.enforce_keys);
        // Cheap coverage-equality reject first: embedding attempts run only
        // against the (few) earlier representatives of this exact class.
        let mut total = 0usize;
        let mut same_class = 0usize;
        let dead = sub.visible.any_all(|(acc, acc_cov)| {
            total += 1;
            *acc_cov == cov && {
                same_class += 1;
                subsumes(acc, inst, sub.fixed)
            }
        });
        if dead {
            self.pruned.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        // When the filter keeps the accept, `total`/`same_class` equal the
        // current visible population (published + staged) — both are pure
        // functions of the FIFO kept stream, hence identical across
        // drivers. Staging is capped per class (early accepts of a class
        // are the smallest, so a few representatives retain the pruning
        // power) and in total (memory + scan bound).
        if total < SUBSUME_VISIBLE_CAP && same_class < SUBSUME_CLASS_CAP {
            sub.visible.note((inst.clone(), cov.clone()));
        }
        *cov_slot = Some(cov);
        true
    }

    fn wave_boundary(&self) {
        if let Some(sub) = &self.subsume {
            sub.visible.publish(SUBSUME_VISIBLE_CAP);
        }
    }

    /// Whole-wave solver batching (`cfg.wave_batch`, parallel driver only):
    /// canonicalize every survivor's consistency problem once, dedupe
    /// identical canonical problems across the wave, solve one
    /// representative per class on the lead context, and prime every
    /// worker's digest memo with the verdicts — so the per-item
    /// `consistent` probes inside [`expand`](Self::expand) become O(1) hash
    /// hits regardless of which worker each item lands on. Verdicts are
    /// pure functions of the canonical problem, so this only moves work,
    /// never changes answers.
    fn prepare_wave(&self, ctxs: &mut [WorkerCtx], survivors: &[&CInstance]) {
        if !self.cfg.wave_batch || survivors.len() < 2 || ctxs.is_empty() {
            return;
        }
        let _s = trace::span_phase("wave_batch", "sched", Phase::Sched);
        // Unique digests; a verdict some worker already holds (typically
        // the child's producer) is fanned out without re-canonicalizing.
        let mut seen: HashSet<u64> = HashSet::new();
        let mut known: Vec<(u64, bool)> = Vec::new();
        let mut unknown: Vec<(u64, &CInstance)> = Vec::new();
        for inst in survivors {
            let digest = digest_of(self.cfg, inst);
            if !seen.insert(digest) {
                continue;
            }
            match ctxs.iter().find_map(|c| c.consist_memo.get(&digest)) {
                Some(&sat) => known.push((digest, sat)),
                None => unknown.push((digest, inst)),
            }
        }
        self.wave_problems.fetch_add(seen.len() as u64, Ordering::SeqCst);
        // Canonicalize the undecided problems and group identical ones.
        let mut class_of: HashMap<CanonKey, usize> = HashMap::new();
        let mut classes: Vec<(Canonical, Vec<u64>)> = Vec::new();
        for (digest, inst) in unknown {
            let canon = {
                let _c = trace::span_phase("canonicalize", "solver", Phase::Canon);
                canonicalize(&to_problem(inst, self.cfg.enforce_keys))
            };
            match class_of.get(&canon.key) {
                Some(&i) => classes[i].1.push(digest),
                None => {
                    class_of.insert(canon.key.clone(), classes.len());
                    classes.push((canon, vec![digest]));
                }
            }
        }
        self.wave_classes.fetch_add(classes.len() as u64, Ordering::SeqCst);
        // Resolve one representative per class on the lead context:
        // L1 → shared L2 → batch solve, publishing fresh verdicts to L2.
        let mut verdicts: Vec<(Vec<u64>, bool)> = known
            .into_iter()
            .map(|(digest, sat)| (vec![digest], sat))
            .collect();
        {
            let ctx0 = &mut ctxs[0];
            let mut to_solve: Vec<(Canonical, Vec<u64>)> = Vec::new();
            for (canon, digests) in classes {
                match ctx0.solver_cache.lookup_sat(&canon) {
                    Some(sat) => verdicts.push((digests, sat)),
                    None => {
                        let l2 = ctx0
                            .share_l2
                            .then(|| ctx0.shared.solver.get(&canon.key))
                            .flatten();
                        match l2 {
                            Some(result) => {
                                let sat = result.is_some();
                                ctx0.solver_cache.insert_canonical(canon.key.clone(), result);
                                verdicts.push((digests, sat));
                            }
                            None => to_solve.push((canon, digests)),
                        }
                    }
                }
            }
            let bits = {
                let refs: Vec<&Canonical> = to_solve.iter().map(|(c, _)| c).collect();
                let _solve = trace::span_phase("wave_batch_solve", "solver", Phase::Solver);
                ctx0.solver_cache.solve_batch(&refs).0
            };
            for ((canon, digests), sat) in to_solve.into_iter().zip(bits) {
                if ctx0.share_l2 {
                    if let Some(result) = ctx0.solver_cache.peek_canonical(&canon.key) {
                        ctx0.shared.solver.insert(canon.key, result);
                    }
                }
                verdicts.push((digests, sat));
            }
        }
        // Fan every verdict out to every worker's digest memo.
        for ctx in ctxs.iter_mut() {
            for (digests, sat) in &verdicts {
                for &digest in digests {
                    if ctx.consist_memo.len() < 1_000_000 {
                        ctx.consist_memo.insert(digest, *sat);
                    }
                }
            }
        }
    }
}

/// The recursive chase engine: all of Algorithms 1–6 below the top level,
/// operating on one worker's memo context.
struct Engine<'e> {
    query: &'e Query,
    cfg: &'e ChaseConfig,
    universal_fresh: bool,
    deadline: Option<Instant>,
    cancel: Option<&'e CancelToken>,
    query_key: u64,
    /// Thread source for nested-BFS wave fan-out (resident pools only —
    /// scoped handles report width 1 and keep the recursion sequential).
    exec: Exec<'e>,
    ctx: &'e mut WorkerCtx,
}

impl Engine<'_> {
    fn stopped(&mut self) -> bool {
        if let Some(d) = self.deadline {
            // lint:allow(wall-clock) deadline enforcement needs a real clock
            if Instant::now() >= d {
                self.ctx.timed_out = true;
                return true;
            }
        }
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            self.ctx.cancelled = true;
            return true;
        }
        false
    }

    fn consistent(&mut self, inst: &CInstance) -> bool {
        let key = digest_of(self.cfg, inst);
        if let Some(v) = self.ctx.consist_memo.get(&key) {
            return *v;
        }
        let ans = self.full_check(inst);
        self.memoize_consistency(key, ans);
        ans
    }

    /// `IsConsistent` for a chase step `parent → child`. The child's
    /// problem is canonicalized once and looked up in the solver memo; on a
    /// miss, the parent's saturated theory state is extended with the
    /// step's delta literals (much cheaper than a fresh solve) and the
    /// answer is inserted into the memo so isomorphic siblings hit. The
    /// extension soundly falls back to a full solve whenever the step
    /// touches keys or negative conditions (or no parent state is
    /// reusable).
    fn consistent_step(&mut self, parent: &CInstance, child: &CInstance) -> bool {
        let key = digest_of(self.cfg, child);
        if let Some(v) = self.ctx.consist_memo.get(&key) {
            return *v;
        }
        consistency_checks_metric().inc();
        let ans = if self.cfg.solver_cache {
            let canon = {
                let _s = trace::span_phase("canonicalize", "solver", Phase::Canon);
                let problem = to_problem(child, self.cfg.enforce_keys);
                canonicalize(&problem)
            };
            let l1 = {
                let _s = trace::span_phase("l1_lookup", "solver", Phase::Solver);
                self.ctx.solver_cache.lookup_sat(&canon)
            };
            match l1 {
                Some(sat) => sat,
                // L1 miss → consult the shared L2 tier (multi-thread runs
                // only): a sibling worker may already have decided an
                // isomorphic step. L2 stores canonical-space outcomes, so a
                // hit back-fills L1 directly.
                None => {
                    let l2 = {
                        let _s = trace::span_phase("l2_lookup", "solver", Phase::Solver);
                        self.ctx
                            .share_l2
                            .then(|| self.ctx.shared.solver.get(&canon.key))
                            .flatten()
                    };
                    match l2 {
                        Some(result) => {
                            let sat = result.is_some();
                            self.ctx.solver_cache.insert_canonical(canon.key.clone(), result);
                            sat
                        }
                        None => {
                            let incr = {
                                let _s = trace::span_phase(
                                    "incremental_extend",
                                    "solver",
                                    Phase::Solver,
                                );
                                self.incremental_check(parent, child)
                            };
                            match incr {
                                Some(ext) => {
                                    self.ctx.incr_extends += 1;
                                    // Canonical-space outcome is a pure function of
                                    // the key, so publishing to L2 is race-benign
                                    // (first writer wins, all writers agree).
                                    let result =
                                        ext.as_ref().map(|st| canon.model_to_canon(st.model()));
                                    if self.ctx.share_l2 {
                                        self.ctx
                                            .shared
                                            .solver
                                            .insert(canon.key.clone(), result.clone());
                                    }
                                    self.ctx
                                        .solver_cache
                                        .insert_canonical(canon.key.clone(), result);
                                    match ext {
                                        Some(st) => {
                                            self.memoize_state(state_key(key, child), st);
                                            true
                                        }
                                        None => false,
                                    }
                                }
                                None => {
                                    self.ctx.incr_fallbacks += 1;
                                    let _s = trace::span_phase("solve", "solver", Phase::Solver);
                                    let sat =
                                        self.ctx.solver_cache.solve_canonical(&canon).is_sat();
                                    if self.ctx.share_l2 {
                                        if let Some(result) =
                                            self.ctx.solver_cache.peek_canonical(&canon.key)
                                        {
                                            self.ctx.shared.solver.insert(canon.key.clone(), result);
                                        }
                                    }
                                    sat
                                }
                            }
                        }
                    }
                }
            }
        } else {
            let incr = {
                let _s = trace::span_phase("incremental_extend", "solver", Phase::Solver);
                self.incremental_check(parent, child)
            };
            match incr {
                Some(ext) => {
                    self.ctx.incr_extends += 1;
                    match ext {
                        Some(st) => {
                            self.memoize_state(state_key(key, child), st);
                            true
                        }
                        None => false,
                    }
                }
                None => {
                    self.ctx.incr_fallbacks += 1;
                    let _s = trace::span_phase("solve", "solver", Phase::Solver);
                    is_consistent(child, self.cfg.enforce_keys)
                }
            }
        };
        self.memoize_consistency(key, ans);
        ans
    }

    /// From-scratch `IsConsistent`, through the canonical-problem memo when
    /// enabled. (Attributed wholesale to the solver phase: canonicalization
    /// happens inside the cached path and can't be split out here.)
    fn full_check(&mut self, inst: &CInstance) -> bool {
        consistency_checks_metric().inc();
        let _s = trace::span_phase("full_check", "solver", Phase::Solver);
        if self.cfg.solver_cache {
            is_consistent_cached(inst, self.cfg.enforce_keys, &mut self.ctx.solver_cache)
        } else {
            is_consistent(inst, self.cfg.enforce_keys)
        }
    }

    fn memoize_consistency(&mut self, key: u64, ans: bool) {
        if self.ctx.consist_memo.len() < 1_000_000 {
            self.ctx.consist_memo.insert(key, ans);
        }
    }

    /// The incremental path. Outer `None` means "not eligible — run the
    /// full check"; `Some(ext)` is a definitive answer obtained by
    /// extending the parent's [`SaturatedState`] with the delta:
    /// `Some(state)` when consistent, `None` when the delta is refuted (the
    /// parent state is untouched — rollback by persistence).
    ///
    /// Eligibility (soundness): the child's problem must be a pure
    /// conjunction — every negated atom ranges over an empty table and no
    /// enforced key sees two rows — and the child's global condition must
    /// extend the parent's. Then `IsConsistent(child)` is exactly
    /// `parent-conjunction ∧ delta`, which the saturated state decides.
    fn incremental_check(
        &mut self,
        parent: &CInstance,
        child: &CInstance,
    ) -> Option<Option<SaturatedState>> {
        if !self.cfg.incremental {
            return None;
        }
        // Below this size a fresh solve is cheaper than state bookkeeping.
        if parent.global.len() < self.cfg.incremental_min_lits {
            return None;
        }
        if !is_pure_conjunctive(child, self.cfg.enforce_keys) {
            return None;
        }
        if child.global.len() < parent.global.len()
            || child.global[..parent.global.len()] != parent.global[..]
        {
            return None;
        }
        let parent_key = state_key(digest_of(self.cfg, parent), parent);
        let mut seeded: Option<SaturatedState> = None;
        if self.ctx.sat_memo.contains_key(&parent_key) {
            self.ctx.sat_l1_hits += 1;
        } else {
            self.ctx.sat_l1_misses += 1;
            let st = match self
                .ctx
                .share_l2
                .then(|| self.ctx.shared.sat.get(&parent_key))
                .flatten()
            {
                // A sibling worker already saturated this parent state.
                Some(st) => st,
                None => {
                    // Child purity implies parent purity (tables and
                    // conditions only grow), so the parent's conjunction
                    // seeds a state. A `None` here means the parent itself
                    // is inconsistent; fall back (the caller's full check
                    // will agree).
                    debug_assert!(is_pure_conjunctive(parent, self.cfg.enforce_keys));
                    SaturatedState::saturate(&parent.null_types(), &conj_lits(&parent.global))?
                }
            };
            seeded = Some(st);
        }
        let parent_state = match &seeded {
            Some(st) => st,
            None => &self.ctx.sat_memo[&parent_key],
        };
        // The delta reduces through the same logic as a whole instance
        // (`NotIn` over an empty table is vacuous, exactly as in
        // `to_problem`).
        let delta: Vec<Lit> = conj_lits(&child.global[parent.global.len()..]);
        let extended = parent_state.extend(&child.null_types(), &delta);
        if let Some(st) = seeded {
            self.memoize_state(parent_key, st);
        }
        Some(extended)
    }

    fn memoize_state(&mut self, key: u64, st: SaturatedState) {
        // Saturated states are deterministic functions of the key, so the
        // shared tier's first-writer-wins races are benign.
        if self.ctx.share_l2 {
            self.ctx.shared.sat.insert(key, st.clone());
        }
        if self.ctx.sat_memo.len() < SAT_MEMO_CAP {
            self.ctx.sat_memo.insert(key, st);
        }
    }

    /// `Tree-Chase-BFS` (Algorithm 1) for recursive (sub-formula) calls,
    /// memoized on (subtree, instance, relevant homomorphism entries).
    fn bfs(&mut self, q: &Formula, h0: &Hom, i0: &CInstance) -> Vec<CInstance> {
        // Key: query identity (variable names/domains — see
        // `Chase::query_key`) + subtree structure + exact instance + the
        // homomorphism entries its free variables see.
        let fkey = hash_of(&(self.query_key, format!("{q:?}")));
        let ikey = digest_of(self.cfg, i0);
        let hkey = {
            let mut hh = DefaultHasher::new();
            for v in q.free_vars() {
                v.0.hash(&mut hh);
                format!("{:?}", h0.get(v.index()).and_then(|e| e.as_ref())).hash(&mut hh);
            }
            hh.finish()
        };
        let key = (fkey, ikey, hkey);
        if let Some(cached) = self.ctx.bfs_memo.get(&key) {
            return cached.clone();
        }
        let res = self.bfs_inner(q, h0, i0);
        // Results truncated by timeout/cancellation must not poison the
        // cache (it outlives the run now that sessions recycle contexts).
        if !self.ctx.timed_out && !self.ctx.cancelled && self.ctx.bfs_memo.len() < 400_000 {
            self.ctx.bfs_memo.insert(key, res.clone());
        }
        res
    }

    /// `Tree-Chase-BFS` body, restructured into FIFO waves. Sequentially
    /// the loop pops one instance, admits it (size bound + visited
    /// isomorphism check), then either accepts it or expands it. The wave
    /// form does the same work level by level: admission stays sequential
    /// (each admitted instance joins `visited` before the next is checked
    /// — exactly the pop order), and the per-instance accept/expand step
    /// ([`bfs_step`](Self::bfs_step)) runs over the whole wave at once.
    /// Since an instance's step never reads `visited` or its siblings, the
    /// steps are independent and [`expand_wave`](Self::expand_wave) may
    /// fan them out across the resident pool; the FIFO merge afterwards
    /// restores the order the sequential loop would have produced
    /// (children of `wave[i]` precede children of `wave[i+1]`).
    fn bfs_inner(&mut self, q: &Formula, h0: &Hom, i0: &CInstance) -> Vec<CInstance> {
        let (i0, h0) = bind_free_vars(self.query, q, i0.clone(), h0.clone());
        // Seed nulls are shared by every result of this search, so a
        // subsumption embedding must keep them pointwise fixed.
        let fixed = i0.num_nulls();
        let mut res: Vec<CInstance> = Vec::new();
        // Leaf coverage of each kept result, in step with `res` (filled
        // only under `cfg.subsume_prune`).
        let mut res_covs: Vec<Coverage> = Vec::new();
        let mut frontier: Vec<CInstance> = vec![i0];
        let mut visited: Vec<(u64, CInstance)> = Vec::new();
        while !frontier.is_empty() {
            if self.stopped() {
                break;
            }
            let _wave_span = trace::span("nested_wave", "chase");
            // Line 10: size bound and visited (isomorphism) check.
            let mut wave: Vec<CInstance> = Vec::new();
            {
                let _s = trace::span_phase("nested_admit", "dedupe", Phase::Dedupe);
                for inst in std::mem::take(&mut frontier) {
                    if inst.size() > self.cfg.limit {
                        continue;
                    }
                    let sig = signature_of(self.cfg, &inst);
                    if visited
                        .iter()
                        .any(|(s, v)| *s == sig && is_isomorphic(v, &inst))
                    {
                        continue;
                    }
                    visited.push((sig, inst.clone()));
                    wave.push(inst);
                }
            }
            wave_width_metric().observe(wave.len() as u64);
            let steps = self.expand_wave(q, &h0, &wave);
            // `steps` may be shorter than `wave` if the run stopped
            // mid-wave; zip drops the tail, matching the sequential break.
            for (inst, (accepted, children)) in wave.into_iter().zip(steps) {
                if accepted {
                    // Subsumption cut: a result into which an earlier-kept
                    // result embeds (seed nulls fixed, same leaf coverage)
                    // is a redundant re-derivation — and every chase the
                    // caller would have seeded from it (the right-hand
                    // searches of `handle_conjunction`, recursively) dies
                    // with it. This is per-search-local FIFO state, so the
                    // kept list is a pure function of the search inputs —
                    // identical under sequential and wave-parallel drives.
                    if self.cfg.subsume_prune {
                        let cov = coverage_of_cinstance_keys(
                            self.query,
                            &inst,
                            self.cfg.enforce_keys,
                        );
                        if nested_subsumed(&res, &res_covs, &inst, &cov, fixed) {
                            self.ctx.subsumed += 1;
                            continue;
                        }
                        res_covs.push(cov);
                    }
                    res.push(inst);
                } else {
                    frontier.extend(children);
                }
            }
        }
        res
    }

    /// One step of Algorithm 1 for an already-admitted instance: accept it
    /// (Tree-SAT ∧ IsConsistent) or expand it and pre-filter the children.
    /// Pure with respect to the BFS bookkeeping — it reads neither
    /// `visited` nor any sibling — so waves of steps can run concurrently.
    fn bfs_step(&mut self, q: &Formula, h0: &Hom, inst: &CInstance) -> (bool, Vec<CInstance>) {
        // Line 13: Tree-SAT under the *current* homomorphism (recursive
        // calls must verify satisfaction at the handler's chosen
        // mapping, not under blanket ∃-closure — otherwise the
        // Handle-Universal merge would accept bodies satisfied by some
        // other entity) ∧ IsConsistent(I).
        let ctx = SatCtx::new(self.query, inst, self.cfg.enforce_keys);
        if ctx.tree_sat(q, h0) && self.consistent(inst) {
            return (true, Vec::new());
        }
        // Lines 16–19: expand.
        let expansions = self.tree_chase(q, inst, h0);
        let mut children = Vec::new();
        for j in expansions {
            if self.stopped() {
                break;
            }
            if j.size() <= self.cfg.limit && self.consistent(&j) {
                children.push(j);
            }
        }
        (false, children)
    }

    /// Runs [`bfs_step`](Self::bfs_step) over an admitted wave. Narrow
    /// waves (or scoped execution, whose [`Exec::width`] is 1) stay on the
    /// sequential path; wide waves under a resident pool are re-submitted
    /// to the pool as a nested batch, each step running on a scratch
    /// [`WorkerCtx`] that shares the same L2 memos. Scratch contexts are
    /// kept warm across waves inside `self.ctx.scratch`.
    fn expand_wave(
        &mut self,
        q: &Formula,
        h0: &Hom,
        wave: &[CInstance],
    ) -> Vec<(bool, Vec<CInstance>)> {
        let width = self.exec.width().min(wave.len());
        if width <= 1 || wave.len() < self.cfg.nested_min_wave.max(2) {
            let mut steps = Vec::with_capacity(wave.len());
            for inst in wave {
                if self.stopped() {
                    break;
                }
                steps.push(self.bfs_step(q, h0, inst));
            }
            return steps;
        }
        let _fanout_span = trace::span("nested_wave_fanout", "chase");
        let mut scratch = std::mem::take(&mut self.ctx.scratch);
        while scratch.len() < width {
            let mut fresh = WorkerCtx::new(self.cfg, Arc::clone(&self.ctx.shared));
            fresh.share_l2 = self.ctx.share_l2;
            scratch.push(fresh);
        }
        let (query, cfg, universal_fresh, deadline, cancel, query_key, exec) = (
            self.query,
            self.cfg,
            self.universal_fresh,
            self.deadline,
            self.cancel,
            self.query_key,
            self.exec,
        );
        let steps = exec.run(&mut scratch[..width], wave, |ctx, _, inst| {
            let mut engine = Engine {
                query,
                cfg,
                universal_fresh,
                deadline,
                cancel,
                query_key,
                exec,
                ctx,
            };
            engine.bfs_step(q, h0, inst)
        });
        for s in &scratch {
            self.ctx.timed_out |= s.timed_out;
            self.ctx.cancelled |= s.cancelled;
        }
        self.ctx.scratch = scratch;
        steps
    }

    /// `Tree-Chase` (Algorithm 2): dispatch on the root operator.
    fn tree_chase(&mut self, q: &Formula, inst: &CInstance, h: &Hom) -> Vec<CInstance> {
        if !has_quantifier(q) {
            // Lines 2–7: materialize each DNF conjunction.
            let mut res = Vec::new();
            for conj in tree_to_conj(q) {
                if let Some(j) = materialize(self.query, inst, &conj, h) {
                    // `j` extends `inst` by one materialized conjunction —
                    // the incremental hot path.
                    if self.consistent_step(inst, &j) {
                        res.push(j);
                    }
                }
            }
            return res;
        }
        match q {
            Formula::And(l, r) => self.handle_conjunction(l, r, inst, h),
            Formula::Or(l, r) => self.handle_disjunction(l, r, inst, h),
            Formula::Exists(v, b) => self.handle_existential(*v, b, inst, h),
            Formula::Forall(v, b) => self.handle_universal(*v, b, inst, h),
            Formula::Atom(_) => unreachable!("atom has no quantifier"),
        }
    }

    /// Algorithm 3: chase the left child, then the right child on each of
    /// its solutions.
    fn handle_conjunction(
        &mut self,
        l: &Formula,
        r: &Formula,
        inst: &CInstance,
        h: &Hom,
    ) -> Vec<CInstance> {
        let mut res = Vec::new();
        let lres = self.bfs(l, h, inst);
        for j in lres {
            if self.stopped() {
                break;
            }
            // BFS results are already consistent and satisfying.
            res.extend(self.bfs(r, h, &j));
        }
        res
    }

    /// Algorithm 4: expand the root `∨` into its three conjunctive cases.
    fn handle_disjunction(
        &mut self,
        l: &Formula,
        r: &Formula,
        inst: &CInstance,
        h: &Hom,
    ) -> Vec<CInstance> {
        let mut res = Vec::new();
        for case in expand_disj_node(l, r) {
            if self.stopped() {
                break;
            }
            res.extend(self.bfs(&case, h, inst));
        }
        res
    }

    /// Algorithm 5: map the variable to every pool entity, and once to a
    /// fresh labeled null.
    fn handle_existential(
        &mut self,
        v: VarId,
        body: &Formula,
        inst: &CInstance,
        h: &Hom,
    ) -> Vec<CInstance> {
        let d = self.query.var_domain(v);
        let mut res = Vec::new();
        for e in inst.domain_pool(d).to_vec() {
            if self.stopped() {
                break;
            }
            let mut g = h.clone();
            g[v.index()] = Some(e);
            res.extend(self.bfs(body, &g, inst));
        }
        if !self.stopped() {
            let mut i2 = inst.clone();
            let y = i2.fresh_null(self.query.var_name(v), d);
            let mut g = h.clone();
            g[v.index()] = Some(Ent::Null(y));
            res.extend(self.bfs(body, &g, &i2));
        }
        res
    }

    /// Algorithm 6: solutions for *all* pool entities are merged (the body
    /// must hold for every one); optionally also for one fresh null.
    fn handle_universal(
        &mut self,
        v: VarId,
        body: &Formula,
        inst: &CInstance,
        h: &Hom,
    ) -> Vec<CInstance> {
        let d = self.query.var_domain(v);
        let pool = inst.domain_pool(d).to_vec();
        let mut res: Vec<CInstance> = Vec::new();
        let mut ilist: Vec<CInstance> = vec![inst.clone()];
        if pool.is_empty() {
            // Lines 2–3: a universal over an empty domain holds vacuously.
            res.push(inst.clone());
        } else {
            for e in pool {
                if self.stopped() {
                    break;
                }
                let mut g = h.clone();
                g[v.index()] = Some(e);
                let mut cur = Vec::new();
                for j1 in &ilist {
                    cur.extend(self.bfs(body, &g, j1));
                }
                ilist = cur;
            }
            res.extend(ilist.iter().cloned());
        }
        // Lines 15–24: additionally require the body for a fresh null
        // (skipped by the EO variants — may lose completeness, §4.3).
        if self.universal_fresh && !self.stopped() {
            let mut cur = Vec::new();
            for j1 in &ilist {
                let mut j = j1.clone();
                let y = j.fresh_null(self.query.var_name(v), d);
                let mut g = h.clone();
                g[v.index()] = Some(Ent::Null(y));
                cur.extend(self.bfs(body, &g, &j));
            }
            res.extend(cur);
        }
        res
    }
}

/// Materializes a conjunction of atoms into a copy of `inst` under `h`
/// (the body of `Add-to-Ins`, also used directly by the CQ¬ fast path and
/// the `*-Add` seeding).
pub fn materialize(
    query: &Query,
    inst: &CInstance,
    conj: &[Atom],
    h: &Hom,
) -> Option<CInstance> {
    let mut j = inst.clone();
    for atom in conj {
        match atom {
            Atom::Rel { negated, rel, terms } => {
                let mut tuple: Vec<Ent> = Vec::with_capacity(terms.len());
                for (col, t) in terms.iter().enumerate() {
                    let d = query.schema.attr_domain(*rel, col);
                    let e = match t {
                        Term::Var(v) => h[v.index()]
                            .clone()
                            .expect("free variable bound before Add-to-Ins"),
                        Term::Const(c) => {
                            j.add_const_to_domain(d, c.clone());
                            Ent::Const(c.clone())
                        }
                        Term::Wildcard => Ent::Null(j.fresh_dont_care(d)),
                    };
                    tuple.push(e);
                }
                if *negated {
                    j.add_cond(Cond::NotIn { rel: *rel, tuple });
                } else {
                    j.add_tuple(*rel, tuple);
                }
            }
            Atom::Cmp { op, lhs, rhs, .. } => {
                // LIKE patterns are *patterns*, not domain values — they
                // must never join the quantifier pools (a pattern string in
                // a pool produces phantom coverage).
                let register = *op != cqi_drc::CmpOp::Like;
                let resolve = |t: &Term, j: &mut CInstance, partner: &Term| -> Ent {
                    match t {
                        Term::Var(v) => h[v.index()]
                            .clone()
                            .expect("free variable bound before Add-to-Ins"),
                        Term::Const(c) => {
                            // Register the constant in the partner
                            // variable's domain pool so quantifiers can
                            // map to it later.
                            if register {
                                if let Term::Var(pv) = partner {
                                    j.add_const_to_domain(query.var_domain(*pv), c.clone());
                                }
                            }
                            Ent::Const(c.clone())
                        }
                        Term::Wildcard => {
                            unreachable!("wildcards cannot appear in comparisons")
                        }
                    }
                };
                let a = resolve(lhs, &mut j, rhs);
                let b = resolve(rhs, &mut j, lhs);
                if let (Ent::Const(_), Ent::Const(_)) = (&a, &b) {
                    // Evaluate immediately; false kills the conjunction,
                    // true need not be recorded.
                    let lit = atom_to_lit(atom, &a, &b);
                    let m = cqi_solver::Model::default();
                    match m.eval_lit(&lit) {
                        Some(true) => continue,
                        _ => return None,
                    }
                }
                j.add_cond(Cond::Lit(atom_to_lit(atom, &a, &b)));
            }
        }
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_schema::{DomainType, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .build()
                .unwrap(),
        )
    }

    fn run_with(src: &str, cfg: &ChaseConfig) -> Vec<CInstance> {
        let s = schema();
        let q = parse_query(&s, src).unwrap();
        let mut chase = Chase::new(&q, cfg, true);
        let seed = CInstance::new(Arc::clone(&s));
        chase.run_root(&q.formula.clone(), seed, vec![None; q.vars.len()]);
        chase.accepted.into_iter().map(|(i, ..)| i).collect()
    }

    fn run(src: &str, limit: usize) -> Vec<CInstance> {
        run_with(src, &ChaseConfig::with_limit(limit))
    }

    #[test]
    fn single_atom_query_builds_one_tuple() {
        let accepted = run("{ (b1) | exists d1 (Likes(d1, b1)) }", 4);
        assert!(!accepted.is_empty());
        // The smallest accepted instance is a single Likes tuple.
        let min = accepted.iter().map(CInstance::size).min().unwrap();
        assert_eq!(min, 1);
    }

    #[test]
    fn conjunction_joins_on_shared_variable() {
        let accepted = run(
            "{ (b1) | exists d1 (Likes(d1, b1)) and exists x1, p1 (Serves(x1, b1, p1)) }",
            4,
        );
        assert!(!accepted.is_empty());
        for inst in &accepted {
            // Both tables populated, sharing the beer null.
            assert!(inst.tables.iter().all(|t| !t.is_empty()));
        }
    }

    #[test]
    fn comparison_condition_lands_in_global() {
        let accepted = run(
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
            8,
        );
        assert!(!accepted.is_empty());
        assert!(accepted
            .iter()
            .any(|i| i.global.iter().any(|c| matches!(c, Cond::Lit(_)))));
    }

    #[test]
    fn universal_over_empty_pool_accepted_vacuously() {
        // With no drinker nulls in any pool, ∀d1 (¬Likes(d1,b1)) holds
        // vacuously, so Algorithm 1 accepts the Serves-only instance
        // without expanding it (reaching the ¬Likes coverage is the job of
        // the *-Add seeding, tested in `variants`).
        let accepted = run(
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
            6,
        );
        assert!(!accepted.is_empty());
        assert!(accepted
            .iter()
            .any(|i| i.global.iter().all(|c| !matches!(c, Cond::NotIn { .. }))));
    }

    #[test]
    fn disjunction_produces_multiple_shapes() {
        let accepted = run(
            "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
            6,
        );
        // Both the >3 and <1 shapes must be found.
        let has_gt = accepted.iter().any(|i| {
            i.global
                .iter()
                .any(|c| i.cond_string(c).contains("> 3") || i.cond_string(c).contains("3 <"))
        });
        let has_lt = accepted.iter().any(|i| {
            i.global
                .iter()
                .any(|c| i.cond_string(c).contains("< 1") || i.cond_string(c).contains("1 >"))
        });
        assert!(has_gt && has_lt, "{:?}", accepted.len());
    }

    #[test]
    fn limit_bounds_instance_size() {
        let accepted = run(
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
            5,
        );
        assert!(accepted.iter().all(|i| i.size() <= 5));
    }

    #[test]
    fn timeout_flags_and_stops() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1, b1) | exists d1, p1 . Serves(x1, b1, p1) and Likes(d1, b1) \
             and forall x2, p2 (not Serves(x2, b1, p2) or p1 >= p2) }",
        )
        .unwrap();
        let cfg = ChaseConfig::with_limit(12).timeout(Duration::from_millis(1));
        let mut chase = Chase::new(&q, &cfg, true);
        chase.run_root(
            &q.formula.clone(),
            CInstance::new(Arc::clone(&s)),
            vec![None; q.vars.len()],
        );
        // With a 1 ms budget the search cannot finish exploring.
        assert!(chase.timed_out || !chase.accepted.is_empty());
    }

    #[test]
    fn max_results_short_circuits() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let cfg = ChaseConfig::with_limit(8).max_results(1);
        let mut chase = Chase::new(&q, &cfg, true);
        chase.run_root(
            &q.formula.clone(),
            CInstance::new(Arc::clone(&s)),
            vec![None; q.vars.len()],
        );
        assert_eq!(chase.accepted.len(), 1);
    }

    #[test]
    fn reused_caches_cleared_when_answer_affecting_params_change() {
        // The bfs/consistency memos are only valid under the (limit,
        // enforce_keys, universal_fresh) they were computed with; reusing
        // them across a parameter change would silently change answers
        // (bfs_inner prunes on cfg.limit, Handle-Universal branches on
        // universal_fresh, IsConsistent depends on enforce_keys).
        let s = schema();
        let q = parse_query(
            &s,
            "{ (b1) | exists d1 (Likes(d1, b1)) and exists x1, p1 (Serves(x1, b1, p1)) }",
        )
        .unwrap();
        let run = |cfg: &ChaseConfig, fresh: bool, caches: &mut ChaseCaches| {
            let mut chase = Chase::new_reusing(&q, cfg, fresh, caches);
            chase.run_root(
                &q.formula.clone(),
                CInstance::new(Arc::clone(&s)),
                vec![None; q.vars.len()],
            );
            chase.recycle_into(caches);
        };
        let memo_sizes = |caches: &ChaseCaches| -> (usize, usize) {
            let c = &caches.ctxs[0];
            (c.bfs_memo.len(), c.consist_memo.len())
        };
        let mut caches = ChaseCaches::new();
        let cfg4 = ChaseConfig::with_limit(4);
        let cfg6 = ChaseConfig::with_limit(6);
        let cfg6_keys = ChaseConfig::with_limit(6).enforce_keys(true);
        run(&cfg4, true, &mut caches);
        let (bfs, consist) = memo_sizes(&caches);
        assert!(bfs > 0 && consist > 0, "run must populate the memos");
        // Same parameters: memos survive (the warm-session fast path).
        run(&cfg4, true, &mut caches);
        let (bfs2, consist2) = memo_sizes(&caches);
        assert!(bfs2 >= bfs && consist2 >= consist);
        // Limit change: cleared before the run starts.
        let chase = Chase::new_reusing(&q, &cfg6, true, &mut caches);
        assert_eq!((chase.ctxs[0].bfs_memo.len(), chase.ctxs[0].consist_memo.len()), (0, 0));
        chase.recycle_into(&mut caches);
        // universal_fresh change: cleared too.
        run(&cfg6, true, &mut caches);
        assert!(memo_sizes(&caches).0 > 0);
        let chase = Chase::new_reusing(&q, &cfg6, false, &mut caches);
        assert_eq!(chase.ctxs[0].bfs_memo.len(), 0);
        chase.recycle_into(&mut caches);
        // enforce_keys change: cleared as well.
        run(&cfg6, false, &mut caches);
        assert!(memo_sizes(&caches).1 > 0);
        let chase = Chase::new_reusing(&q, &cfg6_keys, false, &mut caches);
        assert_eq!(chase.ctxs[0].consist_memo.len(), 0);
    }

    #[test]
    fn shared_l2_entries_cross_worker_boundaries() {
        // White-box: a state published through one worker's memoize path
        // is visible to a *different* worker context wired to the same
        // shared tier — the mechanism behind cross-worker memo reuse.
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let cfg = ChaseConfig::with_limit(4);
        let shared = Arc::new(SharedMemos::default());
        let mut a = WorkerCtx::new(&cfg, Arc::clone(&shared));
        a.share_l2 = true;
        let b = WorkerCtx::new(&cfg, Arc::clone(&shared));
        let st = SaturatedState::saturate(&[], &[]).expect("empty state saturates");
        let mut engine = Engine {
            query: &q,
            cfg: &cfg,
            universal_fresh: true,
            deadline: None,
            cancel: None,
            query_key: 0,
            exec: Exec::scoped(),
            ctx: &mut a,
        };
        engine.memoize_state(42, st);
        assert_eq!(shared.sat.stats.snapshot().inserts, 1);
        // B has never seen the key in its own L1 yet hits the shared tier.
        assert!(!b.sat_memo.contains_key(&42));
        assert!(b.shared.sat.get(&42).is_some());
        assert_eq!(shared.sat.stats.snapshot().hits, 1);
    }

    #[test]
    fn resident_run_reports_waves_batches_and_l2_traffic() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
        )
        .unwrap();
        let cfg = ChaseConfig::with_limit(7)
            .threads(3)
            .parallel_min_frontier(0)
            .nested_min_wave(2);
        let mut caches = ChaseCaches::new();
        caches.ensure_pool(cfg.resolved_threads());
        let mut chase = Chase::new_reusing(&q, &cfg, true, &mut caches);
        chase.run_root(
            &q.formula.clone(),
            CInstance::new(Arc::clone(&s)),
            vec![None; q.vars.len()],
        );
        assert!(!chase.accepted.is_empty());
        let stats = chase.stats();
        assert!(stats.waves > 0, "parallel drive must report waves");
        assert!(
            stats.resident_batches > 0,
            "multi-thread session runs must fan out through the resident pool"
        );
        assert!(
            stats.solver_l2.inserts + stats.sat_l2.inserts > 0,
            "multi-thread runs must publish decided steps to the shared tier"
        );
        assert!(stats.dedupe_offers > 0);
        // Per-run baselining: a fresh chase over the warm session caches
        // starts from zero, not from the session cumulative.
        chase.recycle_into(&mut caches);
        let chase2 = Chase::new_reusing(&q, &cfg, true, &mut caches);
        let st2 = chase2.stats();
        assert_eq!(st2.solver_l1_hits + st2.solver_l1_misses, 0);
        assert_eq!(st2.solver_l2.inserts, 0);
        assert_eq!(st2.sat_l2.inserts, 0);
        assert_eq!(st2.waves, 0);
    }

    #[test]
    fn parallel_root_matches_sequential_accepted_sequence() {
        // The strongest determinism statement: the *ordered* accepted
        // stream is identical, instance by instance, rendered bytes and
        // all.
        let queries = [
            "{ (b1) | exists d1 (Likes(d1, b1)) }",
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
            "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
        ];
        for src in queries {
            let seq = run_with(src, &ChaseConfig::with_limit(6));
            let par = run_with(
                src,
                &ChaseConfig::with_limit(6).threads(4).parallel_min_frontier(2),
            );
            assert_eq!(seq.len(), par.len(), "{src}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(format!("{a}"), format!("{b}"), "{src}");
            }
        }
    }

    /// The ∀-heavy disjunctive workload of the `chase_subsume` bench: heavy
    /// superset redundancy in the raw accepted stream.
    const FORALL_DISJ: &str = "{ (d1) | forall b1 (exists x1, p1 . Serves(x1, b1, p1)) \
                               and (Likes(d1, 'A') or Likes(d1, 'B')) }";

    fn stats_run(src: &str, cfg: &ChaseConfig) -> (Vec<CInstance>, ChaseStats) {
        let s = schema();
        let q = parse_query(&s, src).unwrap();
        let mut chase = Chase::new(&q, cfg, true);
        chase.run_root(
            &q.formula.clone(),
            CInstance::new(Arc::clone(&s)),
            vec![None; q.vars.len()],
        );
        let stats = chase.stats();
        (chase.accepted.into_iter().map(|(i, ..)| i).collect(), stats)
    }

    #[test]
    fn subsume_prune_drops_only_covered_redundancy() {
        // The prune contract at the engine level: the raw accepted stream
        // shrinks, every dropped accept embeds a survivor with the same
        // leaf coverage — so the set of coverage classes and each class's
        // minimum size are unchanged.
        let s = schema();
        let q = parse_query(&s, FORALL_DISJ).unwrap();
        let classes = |insts: &[CInstance]| {
            let mut m: std::collections::HashMap<Vec<u32>, usize> = HashMap::new();
            for i in insts {
                let mut cov: Vec<u32> = coverage_of_cinstance_keys(&q, i, false)
                    .iter()
                    .map(|l| l.0)
                    .collect();
                cov.sort_unstable();
                let e = m.entry(cov).or_insert(usize::MAX);
                *e = (*e).min(i.size());
            }
            m
        };
        let (off, soff) = stats_run(FORALL_DISJ, &ChaseConfig::with_limit(10));
        let (on, son) = stats_run(FORALL_DISJ, &ChaseConfig::with_limit(10).subsume_prune(true));
        assert_eq!(soff.subsumed_subtrees, 0);
        assert!(son.subsumed_subtrees > 0, "the filter must fire");
        assert!(on.len() < off.len(), "pruning must shrink the raw stream");
        assert_eq!(classes(&off), classes(&on));
    }

    #[test]
    fn subsume_prune_keeps_parallel_stream_byte_identical() {
        // Determinism under pruning: the filter consults only
        // boundary-published accepts, so the 4-thread accepted stream (and
        // the prune count) match the sequential run exactly.
        let cfg1 = ChaseConfig::with_limit(10).subsume_prune(true);
        let cfg4 = ChaseConfig::with_limit(10)
            .subsume_prune(true)
            .threads(4)
            .parallel_min_frontier(2);
        let (seq, s1) = stats_run(FORALL_DISJ, &cfg1);
        let (par, s4) = stats_run(FORALL_DISJ, &cfg4);
        assert!(s1.subsumed_subtrees > 0);
        assert_eq!(s1.subsumed_subtrees, s4.subsumed_subtrees);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }

    #[test]
    fn digest_cache_knob_never_changes_answers() {
        // `digest_cache = false` recomputes every digest from scratch; the
        // values are identical, so the accepted stream must be too.
        let (cached, _) = stats_run(FORALL_DISJ, &ChaseConfig::with_limit(10));
        let (fresh, _) = stats_run(FORALL_DISJ, &ChaseConfig::with_limit(10).digest_cache(false));
        assert_eq!(cached.len(), fresh.len());
        for (a, b) in cached.iter().zip(&fresh) {
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }

    #[test]
    fn wave_batch_counts_problems_and_preserves_stream() {
        // A wide disjunctive frontier at 4 threads routes surviving
        // branches through the wave batcher; the verdicts are pure
        // functions of the canonical problem, so the stream is unchanged.
        let src = "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }";
        let base = ChaseConfig::with_limit(8).threads(4).parallel_min_frontier(0);
        let (batched, sb) = stats_run(src, &base.clone().wave_batch(true));
        let (plain, sp) = stats_run(src, &base.wave_batch(false));
        assert!(
            sb.wave_batch_problems > 0,
            "wide waves must route problems through the batcher"
        );
        assert_eq!(sp.wave_batch_problems, 0);
        assert_eq!(batched.len(), plain.len());
        for (a, b) in batched.iter().zip(&plain) {
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }
}
