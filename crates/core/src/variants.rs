//! The six algorithm variants of §5 and the shared finalization pipeline
//! (original-tree validation → coverage → minimality post-processing).

use std::time::Duration;

use cqi_drc::{Atom, Coverage, Formula, SyntaxTree, Term};
use cqi_instance::CInstance;
use cqi_solver::Ent;

use crate::chase::{materialize, Chase, ChaseCaches, RootJob};
use crate::config::{ChaseConfig, Variant};
use crate::conjtree::conjunctive_trees;
use crate::cover::coverage_of_cinstance_keys;
use crate::session::{ExplainRequest, Session};
use crate::solution::{minimize, AcceptedInstance, CSolution, Interrupted};
use crate::treesat::{Hom, SatCtx};

/// Runs one variant on a query's syntax tree and returns its minimal
/// c-solution.
///
/// This is the original batch entry point, kept as a thin wrapper over a
/// one-shot [`Session`]: prefer [`Session::explain`] for streaming results,
/// deadlines-with-status, cancellation, and warm solver caches across
/// queries.
pub fn run_variant(tree: &SyntaxTree, variant: Variant, cfg: &ChaseConfig) -> CSolution {
    Session::new(tree.query().schema.clone())
        .config(cfg.clone())
        .explain_collect(ExplainRequest::tree(tree).variant(variant))
        .expect("pre-parsed trees compile unconditionally")
}

/// The engine behind [`Session::explain`] and [`run_variant`]: runs one
/// variant, calling `observer` with every accepted instance — already
/// validated against the *original* tree and annotated with coverage — in
/// the deterministic accepted order, as the drive produces it (per step
/// sequentially, per wave under the wave-parallel scheduler, per job batch
/// under root fan-out). `observer` returning `false` halts the drive; the
/// instances streamed so far still make up the returned solution, flagged
/// [`Interrupted::Cancelled`].
pub fn run_variant_observed(
    tree: &SyntaxTree,
    variant: Variant,
    cfg: &ChaseConfig,
    caches: &mut ChaseCaches,
    observer: &mut dyn FnMut(AcceptedInstance) -> bool,
) -> CSolution {
    run_variant_inner(tree, variant, cfg, caches, Some(observer))
}

/// Batch form of [`run_variant_observed`]: no per-acceptance callback, so
/// validation/coverage run once at drive end by *moving* the accepted log
/// (no instance clones — the original `run_variant` cost profile).
pub(crate) fn run_variant_batch(
    tree: &SyntaxTree,
    variant: Variant,
    cfg: &ChaseConfig,
    caches: &mut ChaseCaches,
) -> CSolution {
    run_variant_inner(tree, variant, cfg, caches, None)
}

/// Original-tree validation (conjunctive trees only imply the original —
/// re-check, for soundness) and coverage of one accepted instance. `None`
/// means the instance does not satisfy the original tree. An empty
/// coverage is legitimate for vacuously satisfied queries (e.g. a Boolean
/// ∀-only query on the empty instance). When the chase's subsumption
/// filter already computed the coverage (`cached`), only the satisfaction
/// re-check runs — the coverage enumeration, the expensive side, is
/// reused.
fn validated_coverage(
    q: &cqi_drc::Query,
    inst: &CInstance,
    enforce_keys: bool,
    cached: Option<&Coverage>,
) -> Option<Coverage> {
    let ctx = SatCtx::new(q, inst, enforce_keys);
    if !ctx.tree_sat(&q.formula, &vec![None; q.vars.len()]) {
        return None;
    }
    drop(ctx);
    Some(match cached {
        Some(c) => c.clone(),
        None => coverage_of_cinstance_keys(q, inst, enforce_keys),
    })
}

fn run_variant_inner(
    tree: &SyntaxTree,
    variant: Variant,
    cfg: &ChaseConfig,
    caches: &mut ChaseCaches,
    observer: Option<&mut dyn FnMut(AcceptedInstance) -> bool>,
) -> CSolution {
    let q = tree.query();
    let universal_fresh = cfg
        .universal_fresh_nulls
        .unwrap_or_else(|| variant.universal_fresh_nulls());
    // Span capture is per-request: the refcount turns recording on for the
    // duration of this run only, and the guard below becomes the trace's
    // root "explain" span. Untraced runs skip both (inert guards).
    if cfg.trace {
        cqi_obs::trace::begin_capture();
    }
    let explain_span = cqi_obs::trace::span("explain", "request");
    // Multi-thread budgets get a resident pool spawned once per cache
    // lifetime (i.e. once per `Session`) and reused across runs; one-shot
    // and sequential runs keep the spawn-free scoped path.
    caches.ensure_pool(cfg.resolved_threads());
    let mut chase = Chase::new_reusing(q, cfg, universal_fresh, caches);

    let (entries, raw_accepted) = match observer {
        Some(observer) => {
            // Streaming: validation + coverage move from drive-end
            // finalization to acceptance time, so consumers see instances
            // while the search is still running; the computation (and thus
            // the batch result) is unchanged.
            let enforce_keys = cfg.enforce_keys;
            let mut entries: Vec<(CInstance, Coverage, Duration)> = Vec::new();
            let mut validate = |inst: &CInstance, t: Duration, cov: Option<&Coverage>| -> bool {
                let Some(coverage) = validated_coverage(q, inst, enforce_keys, cov) else {
                    return true;
                };
                let acc = AcceptedInstance {
                    ordinal: entries.len(),
                    inst: inst.clone(),
                    coverage: coverage.clone(),
                    accepted_at: t,
                };
                entries.push((inst.clone(), coverage, t));
                observer(acc)
            };
            drive_phases(&mut chase, tree, variant, &mut validate);
            let raw = chase.accepted.len();
            (entries, raw)
        }
        None => {
            // Batch: drive with a no-op observer, then validate by moving
            // the accepted log (zero clones on the hot benchmark path).
            drive_phases(&mut chase, tree, variant, &mut |_, _, _| true);
            let accepted = std::mem::take(&mut chase.accepted);
            let raw = accepted.len();
            let mut entries = Vec::with_capacity(raw);
            for (inst, t, cov) in accepted {
                if let Some(coverage) = validated_coverage(q, &inst, cfg.enforce_keys, cov.as_ref())
                {
                    entries.push((inst, coverage, t));
                }
            }
            (entries, raw)
        }
    };

    let interrupted = if chase.cancelled || chase.halted {
        Some(Interrupted::Cancelled)
    } else if chase.timed_out {
        Some(Interrupted::Deadline)
    } else {
        None
    };
    let mut sol = CSolution {
        instances: minimize(entries),
        raw_accepted,
        timed_out: chase.timed_out,
        interrupted,
        total_time: chase.start.elapsed(),
        stats: chase.stats(),
        trace: None,
    };
    chase.recycle_into(caches);
    // Close the root span before draining, so it lands in the export.
    drop(explain_span);
    if cfg.trace {
        sol.trace = Some(cqi_obs::trace::end_capture());
    }
    sol.stats.publish_metrics();
    sol
}

/// Both phases of one variant run — the per-tree roots and the `*-Add`
/// re-seeds — as batches of independent root searches routed through
/// [`Chase::run_roots_observed`]: with `cfg.threads != 1` whole roots fan
/// out across workers, and each root's own frontier is driven by the
/// `cqi-runtime` scheduler — sequentially or wave-parallel — with
/// identical output either way.
fn drive_phases(
    chase: &mut Chase<'_>,
    tree: &SyntaxTree,
    variant: Variant,
    observer: &mut dyn FnMut(&CInstance, std::time::Duration, Option<&Coverage>) -> bool,
) {
    let q = tree.query();
    let cfg = chase.cfg;
    let formulas: Vec<Formula> = if variant.is_conjunctive() {
        conjunctive_trees(&q.formula)
    } else {
        vec![q.formula.clone()]
    };
    let empty_h: Hom = vec![None; q.vars.len()];
    chase.run_roots_observed(
        formulas
            .iter()
            .map(|f| RootJob {
                formula: f,
                seed: CInstance::new(q.schema.clone()),
                h: empty_h.clone(),
            })
            .collect(),
        observer,
    );

    if variant.is_add() && !chase.timed_out && !chase.cancelled && !chase.halted {
        // Which original leaves are still uncovered by any accepted
        // instance? (Snapshot semantics: every re-seed job below is judged
        // against this one coverage set, which is what makes the jobs
        // independent and the batch parallelizable.)
        let mut covered = Coverage::new();
        for (inst, _, cov) in &chase.accepted {
            match cov {
                Some(c) => covered.extend(c.iter().copied()),
                None => covered.extend(coverage_of_cinstance_keys(q, inst, cfg.enforce_keys)),
            }
        }
        let mut jobs: Vec<RootJob<'_>> = Vec::new();
        for (leaf_id, atom) in tree.leaves() {
            if covered.contains(&leaf_id) {
                continue;
            }
            let Some((seed, h0)) = seed_for_leaf(q, atom) else {
                continue;
            };
            for f in &formulas {
                jobs.push(RootJob {
                    formula: f,
                    seed: seed.clone(),
                    h: h0.clone(),
                });
            }
        }
        chase.run_roots_observed(jobs, observer);
    }
}

/// Iterative deepening (§4.3 "another alternative, aimed at an interactive
/// experience, is to set a timeout parameter instead of the limit"): runs
/// the variant with growing `limit` until the wall-clock budget is
/// exhausted, returning the deepest completed solution (or the last partial
/// one if even the first level timed out).
pub fn run_variant_deepening(
    tree: &SyntaxTree,
    variant: Variant,
    base: &ChaseConfig,
    start_limit: usize,
    step: usize,
) -> (CSolution, usize) {
    let budget = base.timeout.unwrap_or(std::time::Duration::from_secs(10));
    // lint:allow(wall-clock) limit-doubling spends a wall-clock budget by design
    let start = std::time::Instant::now();
    let mut limit = start_limit;
    let mut best: Option<(CSolution, usize)> = None;
    loop {
        let remaining = budget.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            break;
        }
        let mut cfg = base.clone();
        cfg.limit = limit;
        cfg.timeout = Some(remaining);
        let sol = run_variant(tree, variant, &cfg);
        let finished = sol.interrupted.is_none();
        let better = match &best {
            None => true,
            Some((b, _)) => sol.num_coverages() >= b.num_coverages(),
        };
        if better {
            best = Some((sol, limit));
        }
        if !finished {
            break; // deeper levels would only see a smaller budget
        }
        limit += step;
    }
    best.expect("at least one level runs")
}

/// Builds the initial c-instance for an `*-Add` re-seed: the uncovered leaf
/// atom is materialized over fresh labeled nulls, and output variables
/// occurring in it are pre-bound in the homomorphism.
fn seed_for_leaf(
    q: &cqi_drc::Query,
    atom: &Atom,
) -> Option<(CInstance, Hom)> {
    let mut inst = CInstance::new(q.schema.clone());
    let mut h: Hom = vec![None; q.vars.len()];
    // Fresh nulls for every variable of the atom.
    for v in atom.vars() {
        if h[v.index()].is_none() {
            let n = inst.fresh_null(q.var_name(v), q.var_domain(v));
            h[v.index()] = Some(Ent::Null(n));
        }
    }
    let seeded = materialize(q, &inst, std::slice::from_ref(atom), &h)?;
    // Keep bindings only for output variables; quantified variables are
    // re-bound by the chase (their nulls stay available in the pools).
    let mut h0: Hom = vec![None; q.vars.len()];
    for v in &q.out_vars {
        if let Term::Var(_) = Term::Var(*v) {
            if atom.vars().contains(v) {
                h0[v.index()] = h[v.index()].clone();
            }
        }
    }
    Some((seeded, h0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_instance::consistency::is_consistent;
    use cqi_schema::{DomainType, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .build()
                .unwrap(),
        )
    }

    fn tree(src: &str) -> SyntaxTree {
        SyntaxTree::new(parse_query(&schema(), src).unwrap())
    }

    #[test]
    fn all_variants_solve_simple_query() {
        let t = tree("{ (b1) | exists d1 (Likes(d1, b1)) }");
        for v in Variant::ALL {
            let sol = run_variant(&t, v, &ChaseConfig::with_limit(4));
            assert!(!sol.instances.is_empty(), "{v} found nothing");
            for si in &sol.instances {
                assert!(is_consistent(&si.inst, false));
                assert!(crate::treesat::tree_sat(t.query(), &si.inst));
            }
        }
    }

    #[test]
    fn disjunction_yields_multiple_coverages() {
        let t = tree(
            "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
        );
        let sol = run_variant(&t, Variant::DisjEO, &ChaseConfig::with_limit(6));
        // At least the >3-only and <1-only coverages.
        assert!(sol.num_coverages() >= 2, "got {}", sol.num_coverages());
    }

    #[test]
    fn add_variant_reaches_vacuous_forall_leaves() {
        // ∀d1 (¬Likes(d1, b1)) is vacuously satisfied with an empty drinker
        // pool, so the plain chase never covers the ¬Likes leaf; the Add
        // seeding materializes it.
        let t = tree(
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
        );
        let cfg = ChaseConfig::with_limit(6);
        let eo = run_variant(&t, Variant::DisjEO, &cfg);
        let add = run_variant(&t, Variant::DisjAdd, &cfg);
        assert!(add.covered_union().len() > eo.covered_union().len());
        assert_eq!(add.covered_union().len(), 2, "both leaves covered by Add");
        assert!(add.instances.iter().any(|si| si
            .inst
            .global
            .iter()
            .any(|c| matches!(c, cqi_instance::Cond::NotIn { .. }))));
    }

    #[test]
    fn add_variant_covers_at_least_eo() {
        let t = tree(
            "{ (x1, b1) | exists p1 . Serves(x1, b1, p1) and forall p2, x2 (not Serves(x2, b1, p2) or p2 <= p1) }",
        );
        let cfg = ChaseConfig::with_limit(8);
        let eo = run_variant(&t, Variant::ConjEO, &cfg);
        let add = run_variant(&t, Variant::ConjAdd, &cfg);
        assert!(add.covered_union().len() >= eo.covered_union().len());
        assert!(!add.instances.is_empty());
    }

    #[test]
    fn minimality_within_coverage() {
        let t = tree("{ (b1) | exists d1 (Likes(d1, b1)) }");
        let sol = run_variant(&t, Variant::DisjNaive, &ChaseConfig::with_limit(4));
        // The single-coverage solution must be the 1-tuple instance.
        for si in &sol.instances {
            if si.coverage.len() == 1 {
                assert_eq!(si.size(), 1);
            }
        }
    }

    #[test]
    fn cache_and_incremental_knobs_do_not_change_results() {
        // The memo and the saturated-state extension are pure
        // optimizations: accepted coverages must be identical with both
        // paths forced on (min_lits 0) and both off, keys on and off.
        let queries = [
            "{ (b1) | exists d1 (Likes(d1, b1)) }",
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
            "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
        ];
        for src in queries {
            let t = tree(src);
            for keys in [false, true] {
                for v in [Variant::DisjEO, Variant::ConjAdd] {
                    let fast = ChaseConfig::with_limit(7)
                        .enforce_keys(keys)
                        .incremental_min_lits(0);
                    let cold = ChaseConfig::with_limit(7)
                        .enforce_keys(keys)
                        .solver_cache(false)
                        .incremental(false);
                    let a = run_variant(&t, v, &fast);
                    let b = run_variant(&t, v, &cold);
                    let ca: std::collections::BTreeSet<_> = a.coverages().cloned().collect();
                    let cb: std::collections::BTreeSet<_> = b.coverages().cloned().collect();
                    assert_eq!(ca, cb, "query {src} variant {v} keys {keys}");
                    assert_eq!(a.raw_accepted, b.raw_accepted, "query {src} variant {v}");
                }
            }
        }
    }

    #[test]
    fn conj_and_disj_agree_on_or_free_query() {
        let t = tree(
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
        );
        let cfg = ChaseConfig::with_limit(6);
        let disj = run_variant(&t, Variant::DisjEO, &cfg);
        let conj = run_variant(&t, Variant::ConjEO, &cfg);
        let dc: std::collections::BTreeSet<_> = disj.coverages().cloned().collect();
        let cc: std::collections::BTreeSet<_> = conj.coverages().cloned().collect();
        assert_eq!(dc, cc, "∨-free trees make the variants identical");
    }
}
