//! Workload-level test generation (§1, third use case): given a set of
//! workload queries, generate test instances on which a *chosen subset* of
//! the queries is satisfied and the rest are not — automated, comprehensive
//! testing of query workloads.
//!
//! The combined requirement is itself a DRC query (conjunction of
//! existentially closed bodies and their negations), so the whole machinery
//! — chase, consistency, grounding — applies unchanged.

use std::collections::BTreeMap;

use cqi_drc::normalize::combine;
use cqi_drc::{Query, QueryError, SyntaxTree};
use cqi_instance::{ground_instance, GroundInstance};

use crate::config::{ChaseConfig, Variant};
use crate::variants::run_variant;

/// Finds one ground instance satisfying exactly the queries flagged in
/// `positive` (and violating the rest). Returns `Ok(None)` when the chase
/// finds no witness within the configured limit/timeout — which may mean
/// the combination is unsatisfiable, or just out of reach (undecidability,
/// Proposition 3.1).
pub fn generate_selective_instance(
    queries: &[&Query],
    positive: &[bool],
    cfg: &ChaseConfig,
) -> Result<Option<GroundInstance>, QueryError> {
    let combined = combine(queries, positive)?;
    let tree = SyntaxTree::new(combined);
    let mut cfg = cfg.clone();
    cfg.max_results = Some(cfg.max_results.unwrap_or(1));
    let sol = run_variant(&tree, Variant::ConjAdd, &cfg);
    for si in &sol.instances {
        if let Some(g) = ground_instance(&si.inst, cfg.enforce_keys) {
            return Ok(Some(g));
        }
    }
    Ok(None)
}

/// Generates one test database per achievable subset pattern of up to
/// `2^queries.len()` combinations, keyed by the pattern bits
/// (`pattern & (1 << i) != 0` ⇔ query `i` satisfied).
pub fn generate_test_matrix(
    queries: &[&Query],
    cfg: &ChaseConfig,
) -> Result<BTreeMap<u32, GroundInstance>, QueryError> {
    assert!(queries.len() <= 16, "subset enumeration is exponential");
    let mut out = BTreeMap::new();
    for pattern in 0u32..(1 << queries.len()) {
        let positive: Vec<bool> =
            (0..queries.len()).map(|i| pattern & (1 << i) != 0).collect();
        if let Some(g) = generate_selective_instance(queries, &positive, cfg)? {
            out.insert(pattern, g);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_schema::{DomainType, Schema};
    use std::sync::Arc;
    use std::time::Duration;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .build()
                .unwrap(),
        )
    }

    fn cfg() -> ChaseConfig {
        ChaseConfig::with_limit(8).timeout(Duration::from_secs(15))
    }

    #[test]
    fn satisfy_one_but_not_the_other() {
        let s = schema();
        let q_likes = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let q_served = parse_query(&s, "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) }").unwrap();
        // Likes satisfied, Serves not.
        let g = generate_selective_instance(&[&q_likes, &q_served], &[true, false], &cfg())
            .unwrap()
            .expect("achievable combination");
        assert!(cqi_eval::satisfies(&q_likes, &g));
        assert!(!cqi_eval::satisfies(&q_served, &g));
        // The mirror combination.
        let g2 = generate_selective_instance(&[&q_likes, &q_served], &[false, true], &cfg())
            .unwrap()
            .expect("achievable combination");
        assert!(!cqi_eval::satisfies(&q_likes, &g2));
        assert!(cqi_eval::satisfies(&q_served, &g2));
    }

    #[test]
    fn all_positive_selection_satisfies_every_query() {
        let s = schema();
        let q_likes = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let q_served = parse_query(&s, "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) }").unwrap();
        let q_cheap = parse_query(
            &s,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1) and p1 < 2.0) }",
        )
        .unwrap();
        let g = generate_selective_instance(
            &[&q_likes, &q_served, &q_cheap],
            &[true, true, true],
            &cfg(),
        )
        .unwrap()
        .expect("all-positive combination is achievable");
        assert!(cqi_eval::satisfies(&q_likes, &g));
        assert!(cqi_eval::satisfies(&q_served, &g));
        assert!(cqi_eval::satisfies(&q_cheap, &g));
    }

    #[test]
    fn all_negative_selection_violates_every_query() {
        let s = schema();
        let q_likes = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let q_served = parse_query(&s, "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) }").unwrap();
        let g = generate_selective_instance(&[&q_likes, &q_served], &[false, false], &cfg())
            .unwrap()
            .expect("all-negative combination is achievable");
        assert!(!cqi_eval::satisfies(&q_likes, &g));
        assert!(!cqi_eval::satisfies(&q_served, &g));
    }

    #[test]
    fn contradictory_subset_yields_none() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        // q satisfied AND q not satisfied.
        let got = generate_selective_instance(&[&q, &q], &[true, false], &cfg()).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn test_matrix_omits_unsatisfiable_patterns() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        // The same query twice: only the agreeing patterns 00 and 11 are
        // achievable; the contradictory 01 and 10 must be absent.
        let matrix = generate_test_matrix(&[&q, &q], &cfg()).unwrap();
        assert_eq!(
            matrix.keys().copied().collect::<Vec<_>>(),
            vec![0b00, 0b11],
            "{:?}",
            matrix.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn test_matrix_enumerates_achievable_patterns() {
        let s = schema();
        let q_likes = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let q_cheap = parse_query(
            &s,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1) and p1 < 2.0) }",
        )
        .unwrap();
        let matrix = generate_test_matrix(&[&q_likes, &q_cheap], &cfg()).unwrap();
        // All four patterns are achievable for these independent queries.
        assert_eq!(matrix.len(), 4, "{:?}", matrix.keys().collect::<Vec<_>>());
        for (pattern, g) in &matrix {
            assert_eq!(cqi_eval::satisfies(&q_likes, g), pattern & 1 != 0);
            assert_eq!(cqi_eval::satisfies(&q_cheap, g), pattern & 2 != 0);
        }
    }
}
