//! Chase configuration and the six algorithm variants of §5.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shareable cooperative-cancellation flag for one explain/chase run.
///
/// Clone it, hand one copy to [`ChaseConfig::cancel`] (or
/// `ExplainRequest::cancel`), keep the other, and call [`cancel`] from any
/// thread: the chase polls the flag on the same per-step loop that checks
/// the wall-clock deadline, stops, and returns the instances accepted so
/// far flagged [`crate::Interrupted::Cancelled`]. When no token is
/// installed the hot path only pays an `Option` check.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The algorithm variants compared throughout the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Variant {
    /// Exhaustive chase (§4.2) expanding each `∨` node in place.
    DisjNaive,
    /// Whole-tree conversion to `∨`-free trees first (§4.3).
    ConjNaive,
    /// `Disj-Naive` but fresh labeled nulls are only introduced at `∃`
    /// nodes ("EO" = existential-only).
    DisjEO,
    /// `Conj-Naive` with the EO restriction.
    ConjEO,
    /// `Disj-EO`, then re-seeded runs targeting still-uncovered leaf atoms.
    DisjAdd,
    /// `Conj-EO`, then re-seeded runs targeting still-uncovered leaf atoms.
    ConjAdd,
}

impl Variant {
    pub const ALL: [Variant; 6] = [
        Variant::DisjEO,
        Variant::DisjAdd,
        Variant::DisjNaive,
        Variant::ConjEO,
        Variant::ConjAdd,
        Variant::ConjNaive,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Variant::DisjNaive => "Disj-Naive",
            Variant::ConjNaive => "Conj-Naive",
            Variant::DisjEO => "Disj-EO",
            Variant::ConjEO => "Conj-EO",
            Variant::DisjAdd => "Disj-Add",
            Variant::ConjAdd => "Conj-Add",
        }
    }

    /// Does this variant pre-convert the tree to `∨`-free trees?
    pub fn is_conjunctive(self) -> bool {
        matches!(
            self,
            Variant::ConjNaive | Variant::ConjEO | Variant::ConjAdd
        )
    }

    /// Does this variant allow `∀` nodes to mint fresh labeled nulls?
    pub fn universal_fresh_nulls(self) -> bool {
        matches!(self, Variant::DisjNaive | Variant::ConjNaive)
    }

    /// Does this variant run the coverage-seeded second phase?
    pub fn is_add(self) -> bool {
        matches!(self, Variant::DisjAdd | Variant::ConjAdd)
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum c-instance size (tuples + atomic conditions) — the `limit`
    /// of Algorithm 1, ensuring termination.
    pub limit: usize,
    /// Wall-clock budget; on expiry the run returns the instances found so
    /// far and flags `timed_out`.
    pub timeout: Option<Duration>,
    /// Overrides the variant's default for fresh nulls at `∀` nodes
    /// (`None` = variant default).
    pub universal_fresh_nulls: Option<bool>,
    /// Feed key-constraint EGD clauses to the consistency check.
    pub enforce_keys: bool,
    /// Optional cap on accepted satisfying instances (before minimization).
    pub max_results: Option<usize>,
    /// Memoize solver outcomes on canonicalized problems
    /// ([`cqi_solver::SolverCache`]), so structurally isomorphic
    /// `IsConsistent` subproblems are decided once per chase run.
    pub solver_cache: bool,
    /// Capacity of the canonical-problem memo (entries, LRU-evicted).
    pub solver_cache_capacity: usize,
    /// Reuse the parent instance's saturated theory state
    /// ([`cqi_solver::SaturatedState`]) when a chase step adds one tuple or
    /// condition to a pure-conjunctive instance, instead of re-running the
    /// full check from scratch. Falls back to the full check whenever the
    /// step touches keys or negative conditions.
    pub incremental: bool,
    /// Minimum parent global-condition size before the incremental path
    /// engages: extending a saturated state beats a fresh solve once the
    /// parent conjunction is sizable, while tiny problems solve faster
    /// than the state bookkeeping costs.
    pub incremental_min_lits: usize,
    /// Thread budget for frontier expansion (`cqi-runtime`): `1` (the
    /// default) runs the legacy sequential search, `0` uses all available
    /// parallelism, `n > 1` uses exactly `n` workers. Parallel runs accept
    /// the same instances in the same order as sequential ones — the
    /// scheduler's determinism guarantee — so this is purely a wall-clock
    /// knob.
    pub threads: usize,
    /// Frontier waves narrower than this spill to inline single-context
    /// processing instead of fanning out (thread/dedupe overhead only pays
    /// for itself on wide frontiers). Only consulted when `threads != 1`.
    pub parallel_min_frontier: usize,
    /// Minimum width of a *nested* BFS wave (the recursive sub-formula
    /// search inside one worker) before it is re-submitted to the resident
    /// pool as its own batch. Narrower waves stay sequential — the
    /// hand-off only pays for itself on wide recursive frontiers. Only
    /// consulted when a resident pool is attached (`threads > 1`).
    pub nested_min_wave: usize,
    /// Cooperative cancellation: when the token fires, the run stops at the
    /// next per-step poll (the same loop that checks `timeout`) and returns
    /// the instances accepted so far. `None` (the default) costs nothing on
    /// the hot path.
    pub cancel: Option<CancelToken>,
    /// Homomorphic subsumption pruning: skip a frontier branch's entire
    /// subtree when a previously **accepted** instance of the same job
    /// embeds into it (null-renaming homomorphism respecting domains,
    /// conditions, and the shared seed-null prefix —
    /// [`cqi_instance::subsumes`]). Chase steps only grow instances, so an
    /// embedded accept persists down the subtree and the branch can only
    /// rediscover solutions already covered by the embedded one. Prune
    /// decisions consult only accepts published at wave boundaries
    /// (strictly earlier BFS generations), keeping sequential and parallel
    /// accepted streams byte-identical. Off by default: with
    /// `max_results`-style early exits the accepted stream itself can
    /// differ from an unpruned run on adversarial non-monotone formulas,
    /// so the fuzz oracle cross-checks this flag rather than assuming it.
    pub subsume_prune: bool,
    /// Whole-wave solver batching (parallel driver only): before expanding
    /// a wave, canonicalize every surviving branch's consistency problem,
    /// dedupe identical canonical problems, solve one representative per
    /// equivalence class, and prime every worker's memo with the verdicts.
    /// Purely a wall-clock knob — `Engine::consistent` reaches the same
    /// canonical problem and therefore the same verdict either way.
    pub wave_batch: bool,
    /// Serve `exact_digest`/`signature` from the per-instance memo fed by
    /// incrementally maintained hash chains (`cqi-instance`). Off, every
    /// digest probe recomputes from scratch — all cells re-hashed, color
    /// refinement re-run — reproducing the pre-memo engine for A/B
    /// benchmarks (`chase_digest_cache` in `bench_chase`). Identical
    /// digests either way, so answers and accepted streams never change.
    pub digest_cache: bool,
    /// Capture a span trace of the run (`cqi-obs`): request → root job →
    /// wave → solver-call spans recorded into per-thread ring buffers and
    /// returned as Chrome trace-event JSON on `CSolution::trace`, plus the
    /// `ChaseStats` wall-time phase breakdown. Off (the default), the
    /// instrumentation costs one relaxed atomic load per span site; the
    /// accepted stream is byte-identical either way.
    pub trace: bool,
}

impl ChaseConfig {
    pub fn with_limit(limit: usize) -> ChaseConfig {
        ChaseConfig {
            limit,
            timeout: None,
            universal_fresh_nulls: None,
            enforce_keys: false,
            max_results: None,
            solver_cache: true,
            solver_cache_capacity: cqi_solver::cache::DEFAULT_CACHE_CAPACITY,
            incremental: true,
            incremental_min_lits: 6,
            threads: 1,
            parallel_min_frontier: 4,
            nested_min_wave: 8,
            cancel: None,
            subsume_prune: false,
            wave_batch: true,
            digest_cache: true,
            trace: false,
        }
    }

    pub fn timeout(mut self, d: Duration) -> ChaseConfig {
        self.timeout = Some(d);
        self
    }

    pub fn enforce_keys(mut self, on: bool) -> ChaseConfig {
        self.enforce_keys = on;
        self
    }

    pub fn max_results(mut self, n: usize) -> ChaseConfig {
        self.max_results = Some(n);
        self
    }

    pub fn solver_cache(mut self, on: bool) -> ChaseConfig {
        self.solver_cache = on;
        self
    }

    pub fn solver_cache_capacity(mut self, entries: usize) -> ChaseConfig {
        self.solver_cache_capacity = entries;
        self
    }

    pub fn incremental(mut self, on: bool) -> ChaseConfig {
        self.incremental = on;
        self
    }

    pub fn incremental_min_lits(mut self, n: usize) -> ChaseConfig {
        self.incremental_min_lits = n;
        self
    }

    pub fn threads(mut self, n: usize) -> ChaseConfig {
        self.threads = n;
        self
    }

    pub fn parallel_min_frontier(mut self, n: usize) -> ChaseConfig {
        self.parallel_min_frontier = n;
        self
    }

    pub fn nested_min_wave(mut self, n: usize) -> ChaseConfig {
        self.nested_min_wave = n;
        self
    }

    pub fn cancel(mut self, token: CancelToken) -> ChaseConfig {
        self.cancel = Some(token);
        self
    }

    pub fn subsume_prune(mut self, on: bool) -> ChaseConfig {
        self.subsume_prune = on;
        self
    }

    pub fn wave_batch(mut self, on: bool) -> ChaseConfig {
        self.wave_batch = on;
        self
    }

    pub fn digest_cache(mut self, on: bool) -> ChaseConfig {
        self.digest_cache = on;
        self
    }

    pub fn trace(mut self, on: bool) -> ChaseConfig {
        self.trace = on;
        self
    }

    /// The effective worker count: `0` resolves to the machine's available
    /// parallelism.
    pub fn resolved_threads(&self) -> usize {
        cqi_runtime::resolve_threads(self.threads)
    }
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig::with_limit(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_properties() {
        assert!(Variant::DisjNaive.universal_fresh_nulls());
        assert!(!Variant::DisjEO.universal_fresh_nulls());
        assert!(Variant::ConjAdd.is_conjunctive());
        assert!(Variant::ConjAdd.is_add());
        assert!(!Variant::DisjNaive.is_add());
        assert_eq!(Variant::DisjAdd.name(), "Disj-Add");
    }

    #[test]
    fn config_builders() {
        let c = ChaseConfig::with_limit(15)
            .timeout(Duration::from_secs(5))
            .enforce_keys(true)
            .max_results(3);
        assert_eq!(c.limit, 15);
        assert_eq!(c.timeout, Some(Duration::from_secs(5)));
        assert!(c.enforce_keys);
        assert_eq!(c.max_results, Some(3));
        // Cache and incrementality default on.
        assert!(c.solver_cache && c.incremental);
        let cold = c.solver_cache(false).incremental(false).solver_cache_capacity(16);
        assert!(!cold.solver_cache && !cold.incremental);
        assert_eq!(cold.solver_cache_capacity, 16);
    }

    #[test]
    fn cancel_token_is_shared_through_the_config() {
        let tok = CancelToken::new();
        assert!(!tok.is_cancelled());
        let cfg = ChaseConfig::with_limit(3).cancel(tok.clone());
        assert!(!cfg.cancel.as_ref().unwrap().is_cancelled());
        tok.cancel();
        // Clones share one flag — firing the caller's copy is visible
        // through the config's.
        assert!(cfg.cancel.unwrap().is_cancelled());
        assert!(ChaseConfig::with_limit(3).cancel.is_none(), "off by default");
    }

    #[test]
    fn thread_knobs() {
        let c = ChaseConfig::with_limit(6);
        assert_eq!(c.threads, 1, "sequential by default");
        assert_eq!(c.resolved_threads(), 1);
        let par = c.threads(3).parallel_min_frontier(9).nested_min_wave(5);
        assert_eq!(par.resolved_threads(), 3);
        assert_eq!(par.parallel_min_frontier, 9);
        assert_eq!(par.nested_min_wave, 5);
        // 0 = all available parallelism (at least one worker anywhere).
        assert!(ChaseConfig::with_limit(6).threads(0).resolved_threads() >= 1);
    }

    #[test]
    fn algorithmic_cut_knobs() {
        let c = ChaseConfig::with_limit(6);
        assert!(!c.subsume_prune, "pruning is opt-in");
        assert!(c.wave_batch, "wave batching defaults on");
        let tuned = c.subsume_prune(true).wave_batch(false);
        assert!(tuned.subsume_prune && !tuned.wave_batch);
    }
}
