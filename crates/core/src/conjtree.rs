//! Conversion of syntax trees with `∨` into sets of `∨`-free
//! ("conjunctive") trees (§4.3).
//!
//! `Q1 ∨ Q2` expands to the three cases `{Q1 ∧ Q2, ¬Q1 ∧ Q2, Q1 ∧ ¬Q2}`.
//! As the paper stresses (Example 10/11), this conversion is **not**
//! equivalence-preserving under quantifiers — only soundness
//! (`converted ⇒ original`) holds — which is exactly the
//! completeness-for-speed trade the `Conj-*` variants make.

use cqi_drc::normalize::negate;
use cqi_drc::Formula;

/// The single-node expansion used by `Handle-Disjunction` (Algorithm 4):
/// the root `∨` becomes three `∧` trees (negations pushed to leaves);
/// nested disjunctions are left in place for later recursion.
pub fn expand_disj_node(l: &Formula, r: &Formula) -> [Formula; 3] {
    [
        Formula::and(l.clone(), r.clone()),
        Formula::and(negate(l.clone()), r.clone()),
        Formula::and(l.clone(), negate(r.clone())),
    ]
}

/// Whole-tree conversion (the `Conj-*` variants): every `∨` *of the
/// original tree* is expanded into its three cases. Disjunctions that the
/// case-negations themselves introduce (De Morgan over an `∧`, or a negated
/// `∃`-block) are left in place, exactly as the paper's Example 11 does —
/// its second converted formula retains `∀x3,p4 (¬Serves ∨ p3 ≥ p4)`; the
/// residual `∨`s are handled by `Handle-Disjunction` during the chase.
/// Duplicate trees are pruned.
pub fn conjunctive_trees(f: &Formula) -> Vec<Formula> {
    let mut out = convert(f);
    let mut seen = std::collections::HashSet::new();
    out.retain(|t| seen.insert(format!("{t:?}")));
    out
}

fn convert(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::Atom(_) => vec![f.clone()],
        Formula::And(l, r) => {
            let ls = convert(l);
            let rs = convert(r);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for lt in &ls {
                for rt in &rs {
                    out.push(Formula::and(lt.clone(), rt.clone()));
                }
            }
            out
        }
        Formula::Or(l, r) => {
            let ls = convert(l);
            let rs = convert(r);
            let nl = negate((**l).clone());
            let nr = negate((**r).clone());
            let mut out = Vec::new();
            // Q1 ∧ Q2
            for lt in &ls {
                for rt in &rs {
                    out.push(Formula::and(lt.clone(), rt.clone()));
                }
            }
            // ¬Q1 ∧ Q2 (the negated side stays whole)
            for rt in &rs {
                out.push(Formula::and(nl.clone(), rt.clone()));
            }
            // Q1 ∧ ¬Q2
            for lt in &ls {
                out.push(Formula::and(lt.clone(), nr.clone()));
            }
            out
        }
        Formula::Exists(v, b) => convert(b)
            .into_iter()
            .map(|t| Formula::Exists(*v, Box::new(t)))
            .collect(),
        Formula::Forall(v, b) => convert(b)
            .into_iter()
            .map(|t| Formula::Forall(*v, Box::new(t)))
            .collect(),
    }
}

/// Is the tree free of `∨` nodes?
pub fn is_or_free(f: &Formula) -> bool {
    match f {
        Formula::Atom(_) => true,
        Formula::Or(..) => false,
        Formula::And(l, r) => is_or_free(l) && is_or_free(r),
        Formula::Exists(_, b) | Formula::Forall(_, b) => is_or_free(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_schema::{DomainType, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn single_or_gives_three_trees() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1, b1) | exists p1 (Serves(x1, b1, p1) and forall x2, p2 (not Serves(x2, b1, p2) or p2 <= p1)) }",
        )
        .unwrap();
        let trees = conjunctive_trees(&q.formula);
        assert_eq!(trees.len(), 3);
        assert!(trees.iter().all(is_or_free));
    }

    #[test]
    fn negated_and_keeps_residual_or() {
        // (a ∧ b) ∨ c: the ¬(a ∧ b) case keeps ¬a ∨ ¬b in place (Example
        // 11's behaviour) for Handle-Disjunction to process at chase time.
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1) | exists b1, p1 ((Serves(x1, b1, p1) and p1 > 2.0) or p1 < 1.0) }",
        )
        .unwrap();
        let trees = conjunctive_trees(&q.formula);
        assert_eq!(trees.len(), 3);
        assert!(trees.iter().any(|t| !is_or_free(t)), "¬(a∧b) retains an ∨");
    }

    #[test]
    fn or_chain_counts() {
        // A 3-disjunct chain yields 7 trees (3 per ∨ without recursive
        // blow-up of the negated blocks).
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0 or p1 = 2.0)) }",
        )
        .unwrap();
        let trees = conjunctive_trees(&q.formula);
        assert_eq!(trees.len(), 7);
    }

    #[test]
    fn or_free_tree_is_unchanged() {
        let s = schema();
        let q = parse_query(&s, "{ (x1) | exists b1, p1 (Serves(x1, b1, p1)) }").unwrap();
        let trees = conjunctive_trees(&q.formula);
        assert_eq!(trees.len(), 1);
        assert_eq!(
            format!("{:?}", trees[0]),
            format!("{:?}", q.formula)
        );
    }

    #[test]
    fn expand_node_shapes() {
        let s = schema();
        let q = parse_query(
            &s,
            "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 2.0 or p1 < 1.0)) }",
        )
        .unwrap();
        // Find the Or node.
        fn find_or(f: &Formula) -> Option<(&Formula, &Formula)> {
            match f {
                Formula::Or(l, r) => Some((l, r)),
                Formula::And(l, r) => find_or(l).or_else(|| find_or(r)),
                Formula::Exists(_, b) | Formula::Forall(_, b) => find_or(b),
                Formula::Atom(_) => None,
            }
        }
        let (l, r) = find_or(&q.formula).unwrap();
        let cases = expand_disj_node(l, r);
        assert!(cases.iter().all(|c| matches!(c, Formula::And(..))));
    }
}
