//! A sharded concurrent duplicate-detection set with deterministic
//! (sequence-priority) semantics.
//!
//! The chase's `visited` check (Algorithm 1, line 10) deduplicates frontier
//! candidates *modulo renaming of labeled nulls*: a cheap renaming-invariant
//! `signature` buckets candidates, an exact `digest` gives a fast identity
//! path, and a full isomorphism check confirms duplicates on signature
//! collisions. [`ShardedDedupe`] makes that check concurrent — the map is
//! lock-striped into power-of-two shards keyed by signature — while keeping
//! the *outcome* identical to the sequential first-wins rule:
//!
//! * every candidate carries a sequence number (its FIFO frontier
//!   position);
//! * [`offer`](ShardedDedupe::offer) inserts with min-sequence priority: a
//!   candidate that finds an earlier member of its class is a final
//!   `Duplicate`; one that inserts or displaces a *later* member is only
//!   `Tentative`, because a still-racing earlier candidate may displace it
//!   in turn;
//! * after all concurrent offers of a wave have completed (a barrier the
//!   scheduler provides), [`confirm`](ShardedDedupe::confirm) reports
//!   whether the candidate ended up as its class representative.
//!
//! Entry seqs only ever decrease, so `Duplicate` verdicts can never be
//! invalidated and the surviving representative of every class is exactly
//! the candidate the sequential scheduler would have kept — regardless of
//! interleaving.

use std::collections::HashMap;

use cqi_obs::trace::{self, Phase};

use crate::sync::counter::Counter;
use crate::sync::Mutex;

/// The two-level key of the dedupe set: a renaming-invariant `signature`
/// (equal for all members of an isomorphism class — the shard/bucket key)
/// and an exact structural `digest` (equal only for identical instances —
/// the fast positive path, mirroring the digest-keyed memos of the chase).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetKey {
    pub signature: u64,
    pub digest: u64,
}

/// Verdict of an [`offer`](ShardedDedupe::offer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// An earlier-sequence member of this class is already present. Final.
    Duplicate,
    /// The candidate is currently its class representative; must be
    /// [`confirm`](ShardedDedupe::confirm)ed once all concurrent offers of
    /// its wave have completed.
    Tentative,
}

/// Occupancy and traffic counters (monotone, relaxed — for logging/tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct DedupeStats {
    pub offers: u64,
    pub duplicates: u64,
    /// Signature-bucket collisions that required a full isomorphism check
    /// (same signature, different digest).
    pub iso_checks: u64,
    /// Duplicate verdicts settled by the exact-digest fast map, without a
    /// bucket walk or candidate clone.
    pub digest_fast_hits: u64,
}

struct Entry<T> {
    seq: u64,
    digest: u64,
    item: T,
}

/// One lock stripe: signature buckets of class representatives, plus a
/// digest fast map.
struct ShardState<T> {
    /// `signature → representatives of every isomorphism class sharing it`.
    buckets: HashMap<u64, Vec<Entry<T>>>,
    /// `exact digest → minimum sequence ever offered with that digest`.
    /// Identical digests are identical instances (the chase-wide 64-bit
    /// assumption), hence members of one class — so an offer whose digest
    /// was already seen at an earlier-or-equal sequence is a final
    /// `Duplicate` without walking the bucket or cloning the candidate.
    digest_seqs: HashMap<u64, u64>,
}

type Shard<T> = Mutex<ShardState<T>>;

/// Lock-striped concurrent set of isomorphism-class representatives.
pub struct ShardedDedupe<T> {
    shards: Box<[Shard<T>]>,
    mask: usize,
    offers: Counter,
    duplicates: Counter,
    iso_checks: Counter,
    digest_fast_hits: Counter,
}

impl<T: Clone> ShardedDedupe<T> {
    /// Creates a set with `shards` lock stripes (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> ShardedDedupe<T> {
        let n = shards.max(1).next_power_of_two();
        ShardedDedupe {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(ShardState {
                        buckets: HashMap::new(),
                        digest_seqs: HashMap::new(),
                    })
                })
                .collect(),
            mask: n - 1,
            offers: Counter::new(),
            duplicates: Counter::new(),
            iso_checks: Counter::new(),
            digest_fast_hits: Counter::new(),
        }
    }

    fn shard(&self, signature: u64) -> &Shard<T> {
        // Fold the high bits in so shard choice isn't at the mercy of the
        // signature's low-bit distribution.
        let h = signature ^ (signature >> 32);
        &self.shards[(h as usize) & self.mask]
    }

    /// Does `entry` represent the same class as `(digest, item)`? Identical
    /// digests are taken as identity (the chase's digest-keyed memos make
    /// the same 64-bit-collision assumption); otherwise the caller-supplied
    /// isomorphism check decides.
    fn matches<F: Fn(&T, &T) -> bool>(&self, e: &Entry<T>, digest: u64, item: &T, iso: &F) -> bool {
        if e.digest == digest {
            return true;
        }
        self.iso_checks.inc();
        iso(&e.item, item)
    }

    /// Offers a candidate with FIFO priority `seq` (lower wins). `iso` is
    /// the exact duplicate check run on signature collisions.
    pub fn offer<F: Fn(&T, &T) -> bool>(
        &self,
        key: SetKey,
        seq: u64,
        item: &T,
        iso: &F,
    ) -> Offer {
        let _s = trace::span_phase("dedupe_offer", "dedupe", Phase::Dedupe);
        self.offers.inc();
        let mut state = self.shard(key.signature).lock().unwrap();
        if let Some(&s0) = state.digest_seqs.get(&key.digest) {
            if s0 <= seq {
                self.digest_fast_hits.inc();
                self.duplicates.inc();
                return Offer::Duplicate;
            }
        }
        let min = state.digest_seqs.entry(key.digest).or_insert(seq);
        if seq < *min {
            *min = seq;
        }
        let bucket = state.buckets.entry(key.signature).or_default();
        for e in bucket.iter_mut() {
            if self.matches(e, key.digest, item, iso) {
                if e.seq <= seq {
                    self.duplicates.inc();
                    return Offer::Duplicate;
                }
                // Displace the later-sequence representative; it will fail
                // its own confirm.
                e.seq = seq;
                e.digest = key.digest;
                e.item = item.clone();
                return Offer::Tentative;
            }
        }
        bucket.push(Entry {
            seq,
            digest: key.digest,
            item: item.clone(),
        });
        Offer::Tentative
    }

    /// After the wave barrier: did the candidate survive as its class
    /// representative? (Exactly one candidate per class confirms.)
    pub fn confirm<F: Fn(&T, &T) -> bool>(
        &self,
        key: SetKey,
        seq: u64,
        item: &T,
        iso: &F,
    ) -> bool {
        let _s = trace::span_phase("dedupe_confirm", "dedupe", Phase::Dedupe);
        let state = self.shard(key.signature).lock().unwrap();
        let Some(bucket) = state.buckets.get(&key.signature) else {
            return false;
        };
        bucket
            .iter()
            .any(|e| self.matches(e, key.digest, item, iso) && e.seq == seq)
    }

    /// Number of class representatives currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().buckets.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock stripes (power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn stats(&self) -> DedupeStats {
        DedupeStats {
            offers: self.offers.get(),
            duplicates: self.duplicates.get(),
            iso_checks: self.iso_checks.get(),
            digest_fast_hits: self.digest_fast_hits.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test item: `class` drives the (mock) isomorphism check, `tag`
    /// distinguishes non-identical members of one class.
    #[derive(Clone, Debug, PartialEq)]
    struct Item {
        class: u32,
        tag: u32,
    }

    fn key(sig: u64, digest: u64) -> SetKey {
        SetKey {
            signature: sig,
            digest,
        }
    }

    fn iso(a: &Item, b: &Item) -> bool {
        a.class == b.class
    }

    #[test]
    fn first_offer_is_tentative_then_confirmed() {
        let set: ShardedDedupe<Item> = ShardedDedupe::new(4);
        let it = Item { class: 1, tag: 0 };
        let k = key(10, 100);
        assert_eq!(set.offer(k, 0, &it, &iso), Offer::Tentative);
        assert!(set.confirm(k, 0, &it, &iso));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn identical_digest_is_duplicate_without_iso_check() {
        let set: ShardedDedupe<Item> = ShardedDedupe::new(4);
        let it = Item { class: 1, tag: 0 };
        let k = key(10, 100);
        set.offer(k, 0, &it, &iso);
        assert_eq!(set.offer(k, 1, &it, &iso), Offer::Duplicate);
        assert_eq!(set.stats().iso_checks, 0, "digest fast path skips iso");
        assert_eq!(set.stats().digest_fast_hits, 1, "settled by the fast map");
    }

    #[test]
    fn digest_fast_map_respects_sequence_priority() {
        // A later-seq repeat of an exact digest is a fast Duplicate, but an
        // *earlier*-seq repeat must still displace the representative.
        let set: ShardedDedupe<Item> = ShardedDedupe::new(2);
        let it = Item { class: 4, tag: 0 };
        let k = key(11, 400);
        assert_eq!(set.offer(k, 5, &it, &iso), Offer::Tentative);
        assert_eq!(set.offer(k, 7, &it, &iso), Offer::Duplicate);
        assert_eq!(set.offer(k, 2, &it, &iso), Offer::Tentative);
        assert!(set.confirm(k, 2, &it, &iso));
        assert!(!set.confirm(k, 5, &it, &iso));
        let stats = set.stats();
        assert_eq!(stats.digest_fast_hits, 1);
        assert_eq!(stats.duplicates, 1);
        // The map now remembers seq 2: a seq-3 offer is a fast Duplicate.
        assert_eq!(set.offer(k, 3, &it, &iso), Offer::Duplicate);
        assert_eq!(set.stats().digest_fast_hits, 2);
    }

    #[test]
    fn signature_collision_confirms_by_isomorphism() {
        // Same signature, different digests: one genuine duplicate (same
        // class) and one distinct class that must coexist in the bucket.
        let set: ShardedDedupe<Item> = ShardedDedupe::new(1);
        let a = Item { class: 1, tag: 0 };
        let a2 = Item { class: 1, tag: 1 }; // renamed copy of a
        let b = Item { class: 2, tag: 0 }; // different class, same signature
        set.offer(key(7, 100), 0, &a, &iso);
        assert_eq!(set.offer(key(7, 101), 1, &a2, &iso), Offer::Duplicate);
        assert_eq!(set.offer(key(7, 102), 2, &b, &iso), Offer::Tentative);
        assert!(set.confirm(key(7, 102), 2, &b, &iso));
        assert_eq!(set.len(), 2, "distinct classes share a bucket");
        assert!(set.stats().iso_checks >= 2, "collisions ran the full check");
    }

    #[test]
    fn earlier_sequence_displaces_later_regardless_of_arrival_order() {
        // seq 5 arrives first (inserted), then seq 3 (displaces), then
        // seq 1 (displaces again): only seq 1 confirms.
        let set: ShardedDedupe<Item> = ShardedDedupe::new(2);
        let mk = |tag| Item { class: 9, tag };
        let (i5, i3, i1) = (mk(5), mk(3), mk(1));
        assert_eq!(set.offer(key(1, 205), 5, &i5, &iso), Offer::Tentative);
        assert_eq!(set.offer(key(1, 203), 3, &i3, &iso), Offer::Tentative);
        assert_eq!(set.offer(key(1, 201), 1, &i1, &iso), Offer::Tentative);
        assert!(!set.confirm(key(1, 205), 5, &i5, &iso));
        assert!(!set.confirm(key(1, 203), 3, &i3, &iso));
        assert!(set.confirm(key(1, 201), 1, &i1, &iso));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn duplicate_verdicts_are_final() {
        let set: ShardedDedupe<Item> = ShardedDedupe::new(2);
        let mk = |tag| Item { class: 3, tag };
        set.offer(key(2, 300), 2, &mk(0), &iso);
        // seq 4 sees seq 2 → Duplicate (final even though seq 1 later wins).
        assert_eq!(set.offer(key(2, 304), 4, &mk(4), &iso), Offer::Duplicate);
        assert_eq!(set.offer(key(2, 301), 1, &mk(1), &iso), Offer::Tentative);
        assert!(set.confirm(key(2, 301), 1, &mk(1), &iso));
    }

    #[test]
    fn concurrent_offers_elect_the_minimum_sequence() {
        // Hammer one class from many threads in scrambled order; whatever
        // the interleaving, the minimum sequence must be the survivor.
        let set: ShardedDedupe<Item> = ShardedDedupe::new(8);
        let n = 64u64;
        crate::sync::thread::scope(|s| {
            for t in 0..4u64 {
                let set = &set;
                s.spawn(move || {
                    for i in 0..n {
                        // Scramble arrival order per thread.
                        let seq = (i * 17 + t * 31) % n;
                        let it = Item {
                            class: 1,
                            tag: seq as u32,
                        };
                        set.offer(key(5, 1000 + seq), seq, &it, &iso);
                    }
                });
            }
        });
        assert_eq!(set.len(), 1);
        let winner = Item { class: 1, tag: 0 };
        assert!(set.confirm(key(5, 1000), 0, &winner, &iso));
        for seq in 1..n {
            let it = Item {
                class: 1,
                tag: seq as u32,
            };
            assert!(!set.confirm(key(5, 1000 + seq), seq, &it, &iso));
        }
    }

    #[test]
    fn shards_round_up_to_power_of_two() {
        let set: ShardedDedupe<Item> = ShardedDedupe::new(5);
        assert_eq!(set.num_shards(), 8);
        let set: ShardedDedupe<Item> = ShardedDedupe::new(0);
        assert_eq!(set.num_shards(), 1);
        assert!(set.is_empty());
    }
}
