//! A lock-striped shared memo — the L2 tier behind the chase's per-worker
//! L1 maps.
//!
//! PR 3 kept every solver memo worker-local, so parallel runs re-solved
//! canonical subproblems a sibling worker had already answered.
//! [`StripedMemo`] shares those answers across workers while keeping lock
//! hold times tiny: entries are partitioned over independent mutexes by key
//! hash (mirroring `ShardedDedupe`'s striping), each holding a plain
//! `HashMap`. Values are returned **by clone** so no lock outlives a
//! lookup.
//!
//! The memo is only sound for *speed-only* state: a stored value must be a
//! pure function of its key (the invariant the chase's parallel runtime
//! already relies on for its per-worker memos), so which worker computed an
//! entry can never change an answer.
//!
//! Hit/miss/insert/contention counters are atomic and cheap; `contended`
//! counts lock acquisitions that had to block (a `try_lock` miss), which is
//! the number the striping exists to keep near zero.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

use crate::sync::counter::Counter;
use crate::sync::hash::RandomState;
use crate::sync::{Mutex, MutexGuard, TryLockError};

/// Atomic counters of one [`StripedMemo`].
#[derive(Debug, Default)]
pub struct MemoStats {
    pub hits: Counter,
    pub misses: Counter,
    pub inserts: Counter,
    /// Lock acquisitions that found the stripe already held.
    pub contended: Counter,
}

/// A point-in-time copy of [`MemoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoCounts {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub contended: u64,
}

impl MemoStats {
    pub fn snapshot(&self) -> MemoCounts {
        MemoCounts {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            contended: self.contended.get(),
        }
    }
}

/// Lock-striped `HashMap<K, V>` with a per-memo capacity bound and
/// hit/miss/contention counters.
pub struct StripedMemo<K, V> {
    stripes: Vec<Mutex<HashMap<K, V>>>,
    /// Stripe count is a power of two; the key hash is masked with this.
    mask: usize,
    /// Per-stripe entry bound (total capacity / stripe count): full stripes
    /// drop new inserts rather than evict — memo entries are pure functions
    /// of their keys, so dropping one only costs a later recompute.
    stripe_cap: usize,
    hasher: RandomState,
    pub stats: MemoStats,
}

impl<K: Hash + Eq, V: Clone> StripedMemo<K, V> {
    /// `stripes` is rounded up to a power of two; `capacity` bounds the
    /// total entry count across all stripes.
    pub fn new(stripes: usize, capacity: usize) -> StripedMemo<K, V> {
        let n = stripes.max(1).next_power_of_two();
        StripedMemo {
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            stripe_cap: (capacity / n).max(1),
            hasher: RandomState::new(),
            stats: MemoStats::default(),
        }
    }

    fn stripe(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        &self.stripes[(self.hasher.hash_one(key) as usize) & self.mask]
    }

    /// Locks a stripe, counting contention when the lock is already held.
    fn lock<'a>(&'a self, m: &'a Mutex<HashMap<K, V>>) -> MutexGuard<'a, HashMap<K, V>> {
        match m.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.stats.contended.inc();
                m.lock().unwrap()
            }
            Err(TryLockError::Poisoned(e)) => panic!("poisoned memo stripe: {e}"),
        }
    }

    /// Looks `key` up, cloning the value out (no lock is held on return).
    pub fn get(&self, key: &K) -> Option<V> {
        let _s = cqi_obs::trace::span("l2_get", "memo");
        let got = self.lock(self.stripe(key)).get(key).cloned();
        match &got {
            Some(_) => self.stats.hits.inc(),
            None => self.stats.misses.inc(),
        };
        got
    }

    /// Inserts `key → value`; a full stripe drops the insert (first writer
    /// wins on duplicate keys — values are pure functions of keys, so
    /// racing writers agree semantically).
    pub fn insert(&self, key: K, value: V) {
        let _s = cqi_obs::trace::span("l2_insert", "memo");
        let mut g = self.lock(self.stripe(&key));
        if g.len() < self.stripe_cap || g.contains_key(&key) {
            g.entry(key).or_insert(value);
            self.stats.inserts.inc();
        }
    }

    /// Total entries across all stripes (takes every stripe lock).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| self.lock(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_after_insert_round_trips() {
        let memo: StripedMemo<u64, String> = StripedMemo::new(8, 1024);
        assert_eq!(memo.get(&7), None);
        memo.insert(7, "seven".into());
        assert_eq!(memo.get(&7), Some("seven".into()));
        let s = memo.stats.snapshot();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn first_writer_wins_on_duplicate_keys() {
        let memo: StripedMemo<u64, u64> = StripedMemo::new(4, 64);
        memo.insert(1, 10);
        memo.insert(1, 99);
        assert_eq!(memo.get(&1), Some(10));
    }

    #[test]
    fn capacity_bounds_each_stripe() {
        let memo: StripedMemo<u64, u64> = StripedMemo::new(1, 4);
        for k in 0..100 {
            memo.insert(k, k);
        }
        assert!(memo.len() <= 4, "full stripes must drop inserts");
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let memo: StripedMemo<u64, u64> = StripedMemo::new(16, 1 << 16);
        let seen = AtomicUsize::new(0);
        crate::sync::thread::scope(|s| {
            for t in 0..4u64 {
                let memo = &memo;
                let seen = &seen;
                s.spawn(move || {
                    for k in 0..500u64 {
                        memo.insert(k, k * 2);
                        if let Some(v) = memo.get(&(k ^ (t * 131))) {
                            assert_eq!(v, (k ^ (t * 131)) * 2);
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(seen.load(Ordering::Relaxed) > 0);
        for k in 0..500u64 {
            assert_eq!(memo.get(&k), Some(k * 2));
        }
    }
}
