//! The frontier scheduler: sequential and parallel drivers for Algorithm
//! 1's breadth-first expansion loop, behind one [`FrontierScheduler`]
//! trait.
//!
//! A [`FrontierTask`] describes one BFS: how to admit an item (size
//! limit), how to key it for duplicate detection, how to confirm an exact
//! duplicate, and how to *expand* it into either an accepted result or a
//! list of children. Expansion must be a pure function of the item — the
//! per-worker context only carries memo/cache state that changes speed,
//! never answers. Under that contract both schedulers produce the same
//! accepted-result sequence and visit the same frontier (see the module
//! docs of [`crate`] for the argument, and the property tests for the
//! evidence).

use std::collections::VecDeque;
use std::sync::Arc;

use cqi_obs::trace::{self, Phase};

use crate::dedupe::{DedupeStats, Offer, SetKey, ShardedDedupe};
use crate::pool::Exec;
use crate::sync::Mutex;

/// Wave-boundary publication of accepted results: the state behind
/// acceptance-order-safe subsumption pruning.
///
/// The driving thread stages results with [`note`](WaveVisible::note) (in
/// sink order) and makes the accumulated set visible with
/// [`publish`](WaveVisible::publish) — which both schedulers call only at
/// generation boundaries ([`FrontierTask::wave_boundary`]). Concurrent
/// expansions read an immutable [`snapshot`](WaveVisible::snapshot), so
/// every expansion of a wave observes the identical set regardless of
/// worker interleaving: publication is pinned to the barrier, never
/// mid-wave. `cqi-analysis` model-checks exactly this property (and its
/// seeded-fault twin publishes mid-wave to prove the checker would catch a
/// violation).
///
/// Synchronization goes through [`crate::sync`], so under
/// `--features model-check` the protocol runs on the instrumented
/// primitives.
pub struct WaveVisible<T> {
    pending: Mutex<Vec<T>>,
    published: Mutex<Arc<Vec<T>>>,
}

impl<T: Clone> WaveVisible<T> {
    pub fn new() -> WaveVisible<T> {
        WaveVisible {
            pending: Mutex::new(Vec::new()),
            published: Mutex::new(Arc::new(Vec::new())),
        }
    }

    /// Stages a result (driving thread, sink order). Not visible to
    /// [`snapshot`](Self::snapshot) until the next publish.
    pub fn note(&self, value: T) {
        self.pending.lock().unwrap().push(value);
    }

    /// Publishes everything staged so far, capping the visible set at
    /// `cap` entries (earliest-noted survive — a deterministic prefix of
    /// the sink order). Call only at a wave boundary.
    pub fn publish(&self, cap: usize) {
        let mut pending = self.pending.lock().unwrap();
        if pending.is_empty() {
            return;
        }
        let mut published = self.published.lock().unwrap();
        let mut next: Vec<T> = published.as_ref().clone();
        for v in pending.drain(..) {
            if next.len() >= cap {
                break;
            }
            next.push(v);
        }
        *published = Arc::new(next);
    }

    /// The currently published set (any thread; cheap Arc clone).
    pub fn snapshot(&self) -> Arc<Vec<T>> {
        Arc::clone(&self.published.lock().unwrap())
    }

    /// Scans published entries, then pending ones, in note order, until `f`
    /// returns `true`. Driving-thread only (it sees staged results that
    /// [`snapshot`](Self::snapshot) deliberately hides), for filters that
    /// must compare a candidate against *every* earlier-kept result — e.g.
    /// the chase's [`FrontierTask::note_accept`] subsumption filter, which
    /// runs at the sink where same-wave siblings are still unpublished. The
    /// two locks are taken one at a time, never nested.
    pub fn any_all(&self, mut f: impl FnMut(&T) -> bool) -> bool {
        let published = self.snapshot();
        if published.iter().any(&mut f) {
            return true;
        }
        self.pending.lock().unwrap().iter().any(&mut f)
    }
}

impl<T: Clone> Default for WaveVisible<T> {
    fn default() -> Self {
        WaveVisible::new()
    }
}

/// What expanding one frontier item produced: either an accepted result
/// (satisfying, consistent — not expanded further) or children to enqueue.
pub struct Expansion<T, A> {
    pub accepted: Option<A>,
    pub children: Vec<T>,
}

/// One breadth-first frontier exploration, as seen by the scheduler.
pub trait FrontierTask: Sync {
    /// Frontier item (a c-instance branch candidate, for the chase).
    type Item: Clone + Send + Sync;
    /// Per-worker mutable context (solver caches, saturated-state memos).
    type Ctx: Send;
    /// Accepted result type.
    type Accept: Send;

    /// Pre-dedupe admission (the chase's `|I| ≤ limit` bound).
    fn admit(&self, item: &Self::Item) -> bool;

    /// Duplicate-detection keys: renaming-invariant signature + exact
    /// digest.
    fn keys(&self, item: &Self::Item) -> SetKey;

    /// Exact duplicate confirmation (isomorphism), run on signature
    /// collisions.
    fn is_duplicate(&self, a: &Self::Item, b: &Self::Item) -> bool;

    /// Expands one admitted, deduplicated item. Must be deterministic in
    /// `item` *and the wave-boundary state published through
    /// [`wave_boundary`](Self::wave_boundary)* — both schedulers present
    /// the identical boundary-published state to every expansion of a
    /// wave; `ctx` is memo state only.
    fn expand(&self, ctx: &mut Self::Ctx, item: &Self::Item) -> Expansion<Self::Item, Self::Accept>;

    /// Polled between items/waves; return `true` to abort the drive (the
    /// chase's wall-clock deadline). May record the abort in `ctx`.
    fn stopped(&self, ctx: &mut Self::Ctx) -> bool;

    /// Filters every accepted result in sink order, on the driving thread,
    /// just before it is flushed to the sink: returning `false` drops the
    /// accept (it never reaches the sink). Because both drivers call this
    /// at their single FIFO merge point, the kept/dropped decision sees the
    /// identical prefix of earlier accepts regardless of worker
    /// interleaving — which is what makes the chase's subsumption pruning
    /// acceptance-order-safe. The accept is mutable so the filter can
    /// annotate it with derived data (the chase attaches the coverage it
    /// had to compute anyway, sparing the sink a recompute). Tasks that let
    /// accepted results influence later *expansions* stage them here and
    /// publish only at the next [`wave_boundary`](Self::wave_boundary) —
    /// accepts of wave `k` may interleave with wave `k`'s remaining inline
    /// expansions, so acting on them in `expand` immediately would diverge
    /// from the parallel driver.
    fn note_accept(&self, _accepted: &mut Self::Accept) -> bool {
        true
    }

    /// Called on the driving thread at every BFS generation boundary —
    /// after all of generation `k`'s accepts were
    /// [`note_accept`](Self::note_accept)ed and before any generation-`k+1`
    /// item expands. Both schedulers produce the identical generation
    /// structure (seeds are generation 0; children of generation `k` form
    /// generation `k+1`), so state published here is identical across
    /// sequential and parallel drives.
    fn wave_boundary(&self) {}

    /// Called by the wave-parallel driver only, on the driving thread,
    /// after a wave's surviving items are known and before their expansion
    /// fans out. `ctxs` are all worker contexts — the hook may pre-solve
    /// shared work once and prime every context's memo state (speed only,
    /// never answers; the sequential driver never calls this).
    fn prepare_wave(&self, _ctxs: &mut [Self::Ctx], _survivors: &[&Self::Item]) {}
}

/// Drives a [`FrontierTask`] to exhaustion. `sink` receives accepted
/// results in deterministic FIFO order; returning `false` halts the drive
/// (the chase's `max_results`, or a streaming consumer that walked away).
///
/// **Streaming contract:** accepted results are flushed to `sink` *during*
/// the drive — per item in the sequential driver, per wave in the parallel
/// one (wave `k`'s accepts are sunk before wave `k+1` expands) — never
/// batched to the end. The streaming explanation API (`cqi::Session`)
/// relies on this for its time-to-first-instance guarantee; the
/// `sink_flushes_per_wave_not_at_drive_end` test pins it down.
pub trait FrontierScheduler<T: FrontierTask> {
    /// `exec` is the thread source for wave fan-outs (resident pool or
    /// scoped threads); the sequential driver ignores it.
    fn drive(
        &self,
        exec: Exec<'_>,
        task: &T,
        ctxs: &mut [T::Ctx],
        seeds: Vec<T::Item>,
        sink: &mut dyn FnMut(T::Accept) -> bool,
    ) -> DriveStats;
}

/// What one drive did, for the engine-stats surface.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriveStats {
    /// FIFO waves processed (0 under the sequential driver, which has no
    /// wave structure).
    pub waves: u64,
    /// Waves below the spill threshold, processed inline on the main
    /// context.
    pub spilled_waves: u64,
    /// Duplicate-detection traffic of this drive.
    pub dedupe: DedupeStats,
}

/// What happened to one inline-processed item (shared between the
/// sequential driver and the parallel driver's spill path, so the per-item
/// protocol — stopped → admit → offer → expand → sink — lives in exactly
/// one place).
enum InlineStep<T> {
    /// The drive must stop (deadline, or the sink declined).
    Halt,
    /// Item was inadmissible or a duplicate; nothing to enqueue.
    Skip,
    /// Item expanded into children to enqueue.
    Children(Vec<T>),
}

/// Processes one item inline on `ctx`. Offers arrive in FIFO order here, so
/// a `Tentative` verdict is definitive — no confirm pass needed.
fn step_inline<T: FrontierTask>(
    task: &T,
    ctx: &mut T::Ctx,
    dedupe: &ShardedDedupe<T::Item>,
    seq: u64,
    item: &T::Item,
    sink: &mut dyn FnMut(T::Accept) -> bool,
) -> InlineStep<T::Item> {
    if task.stopped(ctx) {
        return InlineStep::Halt;
    }
    if !task.admit(item) {
        return InlineStep::Skip;
    }
    let iso = |a: &T::Item, b: &T::Item| task.is_duplicate(a, b);
    if dedupe.offer(task.keys(item), seq, item, &iso) == Offer::Duplicate {
        return InlineStep::Skip;
    }
    let exp = task.expand(ctx, item);
    if let Some(mut a) = exp.accepted {
        if task.note_accept(&mut a) && !sink(a) {
            return InlineStep::Halt;
        }
        return InlineStep::Skip;
    }
    InlineStep::Children(exp.children)
}

/// The reference implementation: FIFO on one context, no threads. The
/// frontier is walked generation by generation — identical order to a
/// plain FIFO queue (children enqueue behind the current generation's
/// remaining items either way), but with [`FrontierTask::wave_boundary`]
/// called between generations so boundary-published state matches the
/// parallel driver's exactly.
pub struct SequentialScheduler;

impl<T: FrontierTask> FrontierScheduler<T> for SequentialScheduler {
    fn drive(
        &self,
        _exec: Exec<'_>,
        task: &T,
        ctxs: &mut [T::Ctx],
        seeds: Vec<T::Item>,
        sink: &mut dyn FnMut(T::Accept) -> bool,
    ) -> DriveStats {
        let ctx = &mut ctxs[0];
        let dedupe: ShardedDedupe<T::Item> = ShardedDedupe::new(1);
        let mut wave: VecDeque<T::Item> = seeds.into();
        let mut seq: u64 = 0;
        'drive: while !wave.is_empty() {
            task.wave_boundary();
            let mut next: VecDeque<T::Item> = VecDeque::new();
            while let Some(item) = wave.pop_front() {
                let s = seq;
                seq += 1;
                match step_inline(task, ctx, &dedupe, s, &item, sink) {
                    InlineStep::Halt => break 'drive,
                    InlineStep::Skip => {}
                    InlineStep::Children(children) => next.extend(children),
                }
            }
            wave = next;
        }
        DriveStats {
            dedupe: dedupe.stats(),
            ..DriveStats::default()
        }
    }
}

/// Below this wave width the offer/keying phase runs inline: keying is
/// microsecond-scale work and even a resident-pool dispatch costs a lock
/// round-trip per helper, so narrow waves would pay more in dispatch than
/// they save. (Expansion — the expensive phase — still fans out from
/// `min_frontier` up.)
const KEY_FANOUT_MIN: usize = 32;

/// Wave-parallel driver: the frontier is processed in FIFO waves; within a
/// wave, keying/dedupe offers and expansions fan out over the work-stealing
/// pool, then verdicts and results are merged back in FIFO order, so the
/// output is identical to [`SequentialScheduler`]'s.
pub struct ParallelScheduler {
    /// Waves smaller than this spill to inline (single-context) processing
    /// — thread fan-out only pays for itself on wide frontiers.
    pub min_frontier: usize,
    /// Lock stripes of the shared dedupe set.
    pub shards: usize,
}

impl ParallelScheduler {
    pub fn new(min_frontier: usize) -> ParallelScheduler {
        ParallelScheduler {
            min_frontier,
            shards: 64,
        }
    }
}

enum Verdict {
    /// Failed admission (size bound) — dropped before dedupe.
    Skipped,
    /// Final duplicate (an earlier candidate of the class exists).
    Duplicate,
    /// Current class representative; confirmed after the wave barrier.
    Tentative(SetKey),
}

impl<T: FrontierTask> FrontierScheduler<T> for ParallelScheduler {
    fn drive(
        &self,
        exec: Exec<'_>,
        task: &T,
        ctxs: &mut [T::Ctx],
        seeds: Vec<T::Item>,
        sink: &mut dyn FnMut(T::Accept) -> bool,
    ) -> DriveStats {
        let dedupe: ShardedDedupe<T::Item> = ShardedDedupe::new(self.shards);
        let iso = |a: &T::Item, b: &T::Item| task.is_duplicate(a, b);
        let mut frontier: Vec<T::Item> = seeds;
        let mut next_seq: u64 = 0;
        let mut stats = DriveStats::default();
        'drive: while !frontier.is_empty() {
            if task.stopped(&mut ctxs[0]) {
                break;
            }
            task.wave_boundary();
            let _wave_span = trace::span("wave", "sched");
            let wave: Vec<(u64, T::Item)> = {
                let _s = trace::span_phase("wave_assemble", "sched", Phase::Sched);
                frontier
                    .drain(..)
                    .map(|item| {
                        let s = next_seq;
                        next_seq += 1;
                        (s, item)
                    })
                    .collect()
            };
            stats.waves += 1;

            if ctxs.len() <= 1 || wave.len() < self.min_frontier.max(2) {
                stats.spilled_waves += 1;
                // Spill threshold: process the wave inline on the main
                // context, via the same per-item step as the sequential
                // driver (offers arrive in FIFO order, so Tentative is
                // definitive).
                for (seq, item) in wave {
                    match step_inline(task, &mut ctxs[0], &dedupe, seq, &item, sink) {
                        InlineStep::Halt => break 'drive,
                        InlineStep::Skip => {}
                        InlineStep::Children(children) => frontier.extend(children),
                    }
                }
                continue;
            }

            // Phases 1–2: admission, invariant keys, dedupe offers, and the
            // post-barrier confirm. Keying one candidate costs microseconds
            // while a thread spawn costs tens of them, so the offer phase
            // only fans out once the wave is wide enough to amortize the
            // spawns; below that it runs inline in FIFO order (where
            // Tentative is definitive and no confirm pass is needed).
            // Either way the surviving set is the FIFO-first representative
            // of every class.
            let survivors: Vec<usize> = if wave.len() >= KEY_FANOUT_MIN {
                let _offer_span = trace::span("wave_offer_fanout", "sched");
                let verdicts: Vec<Verdict> = exec.run(ctxs, &wave, |_, _, (seq, item)| {
                    if !task.admit(item) {
                        return Verdict::Skipped;
                    }
                    let key = task.keys(item);
                    match dedupe.offer(key, *seq, item, &iso) {
                        Offer::Duplicate => Verdict::Duplicate,
                        Offer::Tentative => Verdict::Tentative(key),
                    }
                });
                wave.iter()
                    .zip(&verdicts)
                    .enumerate()
                    .filter_map(|(i, ((seq, item), v))| match v {
                        Verdict::Tentative(key) if dedupe.confirm(*key, *seq, item, &iso) => {
                            Some(i)
                        }
                        _ => None,
                    })
                    .collect()
            } else {
                wave.iter()
                    .enumerate()
                    .filter_map(|(i, (seq, item))| {
                        (task.admit(item)
                            && dedupe.offer(task.keys(item), *seq, item, &iso)
                                == Offer::Tentative)
                            .then_some(i)
                    })
                    .collect()
            };

            // Phase 2.5: whole-wave preparation (e.g. batched canonical
            // solving) on the driver thread, with all contexts available.
            {
                let _s = trace::span_phase("wave_prepare", "sched", Phase::Sched);
                let survivor_items: Vec<&T::Item> =
                    survivors.iter().map(|&i| &wave[i].1).collect();
                task.prepare_wave(ctxs, &survivor_items);
            }

            // Phase 3 (parallel): expand survivors on worker-local contexts.
            let expansions: Vec<Expansion<T::Item, T::Accept>> = {
                let _s = trace::span("wave_expand", "sched");
                exec.run(ctxs, &survivors, |ctx, _, &widx| task.expand(ctx, &wave[widx].1))
            };

            // Phase 4: merge accepted results and children in FIFO order.
            let _merge_span = trace::span("wave_merge", "sched");
            for exp in expansions {
                if let Some(mut a) = exp.accepted {
                    if task.note_accept(&mut a) && !sink(a) {
                        break 'drive;
                    }
                    continue;
                }
                frontier.extend(exp.children);
            }
        }
        stats.dedupe = dedupe.stats();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic frontier: items are `(value, generation)`; expansion
    /// accepts odd values and spawns `fanout` children for even ones, up
    /// to a depth bound. Duplicate classes are `value % modulus`.
    struct TreeTask {
        fanout: u64,
        depth: u64,
        modulus: u64,
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Node {
        value: u64,
        gen: u64,
    }

    /// Worker context counts expansions (memo-state stand-in).
    #[derive(Default)]
    struct Ctx {
        expansions: usize,
    }

    impl FrontierTask for TreeTask {
        type Item = Node;
        type Ctx = Ctx;
        type Accept = u64;

        fn admit(&self, item: &Node) -> bool {
            item.gen <= self.depth
        }

        fn keys(&self, item: &Node) -> SetKey {
            let class = item.value % self.modulus;
            SetKey {
                signature: class ^ 0xabcd,
                // Exact digest distinguishes members of one class.
                digest: item.value.wrapping_mul(0x9e3779b97f4a7c15) ^ item.gen,
            }
        }

        fn is_duplicate(&self, a: &Node, b: &Node) -> bool {
            a.value % self.modulus == b.value % self.modulus
        }

        fn expand(&self, ctx: &mut Ctx, item: &Node) -> Expansion<Node, u64> {
            ctx.expansions += 1;
            if item.value % 2 == 1 {
                return Expansion {
                    accepted: Some(item.value),
                    children: Vec::new(),
                };
            }
            let children = (1..=self.fanout)
                .map(|k| Node {
                    value: item.value * self.fanout + k,
                    gen: item.gen + 1,
                })
                .collect();
            Expansion {
                accepted: None,
                children,
            }
        }

        fn stopped(&self, _: &mut Ctx) -> bool {
            false
        }
    }

    fn run<S: FrontierScheduler<TreeTask>>(
        s: &S,
        task: &TreeTask,
        workers: usize,
        cap: Option<usize>,
    ) -> (Vec<u64>, Vec<Ctx>) {
        let mut ctxs: Vec<Ctx> = (0..workers).map(|_| Ctx::default()).collect();
        let mut got = Vec::new();
        let seeds = vec![Node { value: 2, gen: 0 }, Node { value: 4, gen: 0 }];
        s.drive(Exec::scoped(), task, &mut ctxs, seeds, &mut |a| {
            got.push(a);
            cap.is_none_or(|c| got.len() < c)
        });
        (got, ctxs)
    }

    fn task() -> TreeTask {
        TreeTask {
            fanout: 3,
            depth: 6,
            modulus: 1 << 40, // effectively no cross-value duplicates
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = task();
        let (seq_out, _) = run(&SequentialScheduler, &t, 1, None);
        let (par_out, _) = run(&ParallelScheduler::new(2), &t, 4, None);
        assert!(!seq_out.is_empty());
        assert_eq!(seq_out, par_out, "accepted sequence must be identical");
    }

    #[test]
    fn parallel_matches_sequential_with_heavy_dedupe() {
        // Small modulus → many cross-candidate duplicates; the
        // sequence-priority protocol must still elect the FIFO-first
        // member of every class.
        let t = TreeTask {
            fanout: 4,
            depth: 5,
            modulus: 13,
        };
        let (seq_out, _) = run(&SequentialScheduler, &t, 1, None);
        let (par_out, _) = run(&ParallelScheduler::new(2), &t, 4, None);
        assert_eq!(seq_out, par_out);
    }

    #[test]
    fn resident_exec_matches_sequential() {
        let t = task();
        let pool = crate::pool::ResidentPool::new(3);
        let counters = crate::pool::RunCounters::default();
        let mut ctxs: Vec<Ctx> = (0..4).map(|_| Ctx::default()).collect();
        let mut got = Vec::new();
        let seeds = vec![Node { value: 2, gen: 0 }, Node { value: 4, gen: 0 }];
        let exec = Exec::resident(&pool).with_counters(&counters);
        let stats = ParallelScheduler::new(2).drive(exec, &t, &mut ctxs, seeds, &mut |a| {
            got.push(a);
            true
        });
        let (seq_out, _) = run(&SequentialScheduler, &t, 1, None);
        assert_eq!(got, seq_out, "resident-pool drive must match sequential");
        assert!(stats.waves > 0);
        assert!(
            counters.resident_batches.get() > 0,
            "wide waves should dispatch to the resident pool"
        );
    }

    #[test]
    fn sink_false_truncates_identically() {
        let t = task();
        let (seq_out, _) = run(&SequentialScheduler, &t, 1, Some(7));
        let (par_out, _) = run(&ParallelScheduler::new(2), &t, 4, Some(7));
        assert_eq!(seq_out.len(), 7);
        assert_eq!(seq_out, par_out, "max-results cut must land identically");
    }

    #[test]
    fn spill_threshold_keeps_small_waves_on_the_main_context() {
        // With an unreachably high spill threshold, every wave is inline:
        // only ctx 0 ever expands, and results still match sequential.
        let t = task();
        let sched = ParallelScheduler::new(usize::MAX);
        let (par_out, ctxs) = run(&sched, &t, 4, None);
        let (seq_out, _) = run(&SequentialScheduler, &t, 1, None);
        assert_eq!(par_out, seq_out);
        assert!(ctxs[0].expansions > 0);
        assert!(
            ctxs[1..].iter().all(|c| c.expansions == 0),
            "spilled waves must not fan out"
        );
    }

    /// [`TreeTask`] with an event log shared between expansion and the
    /// sink, to observe their interleaving.
    struct LoggingTask {
        inner: TreeTask,
        log: std::sync::Mutex<Vec<(&'static str, u64)>>,
    }

    impl FrontierTask for LoggingTask {
        type Item = Node;
        type Ctx = Ctx;
        type Accept = u64;

        fn admit(&self, item: &Node) -> bool {
            self.inner.admit(item)
        }

        fn keys(&self, item: &Node) -> SetKey {
            self.inner.keys(item)
        }

        fn is_duplicate(&self, a: &Node, b: &Node) -> bool {
            self.inner.is_duplicate(a, b)
        }

        fn expand(&self, ctx: &mut Ctx, item: &Node) -> Expansion<Node, u64> {
            self.log.lock().unwrap().push(("expand", item.value));
            self.inner.expand(ctx, item)
        }

        fn stopped(&self, _: &mut Ctx) -> bool {
            false
        }
    }

    /// The streaming contract: accepted results reach the sink between
    /// waves, not in one batch at drive end. With a multi-wave tree, some
    /// accept event must precede the last expansion event.
    #[test]
    fn sink_flushes_per_wave_not_at_drive_end() {
        for workers in [1usize, 4] {
            let task = LoggingTask {
                inner: task(),
                log: std::sync::Mutex::new(Vec::new()),
            };
            let mut ctxs: Vec<Ctx> = (0..workers).map(|_| Ctx::default()).collect();
            let seeds = vec![Node { value: 2, gen: 0 }, Node { value: 4, gen: 0 }];
            ParallelScheduler::new(2).drive(Exec::scoped(), &task, &mut ctxs, seeds, &mut |a| {
                task.log.lock().unwrap().push(("accept", a));
                true
            });
            let log = task.log.into_inner().unwrap();
            let first_accept = log.iter().position(|(k, _)| *k == "accept");
            let last_expand = log.iter().rposition(|(k, _)| *k == "expand");
            assert!(
                first_accept.unwrap() < last_expand.unwrap(),
                "accepts must interleave with later-wave expansions \
                 (workers={workers}): {log:?}"
            );
        }
    }

    #[test]
    fn low_spill_threshold_expands_each_survivor_exactly_once() {
        // Which worker expands a survivor is scheduling-dependent (on a
        // single-core host one worker may steal everything), but the
        // *total* expansion count must equal the sequential scheduler's —
        // no survivor is expanded twice or dropped.
        let t = TreeTask {
            fanout: 8,
            depth: 4,
            modulus: 1 << 40,
        };
        let (seq_out, seq_ctxs) = run(&SequentialScheduler, &t, 1, None);
        let (par_out, par_ctxs) = run(&ParallelScheduler::new(2), &t, 4, None);
        assert_eq!(par_out, seq_out);
        assert_eq!(
            par_ctxs.iter().map(|c| c.expansions).sum::<usize>(),
            seq_ctxs[0].expansions,
            "survivors must be expanded exactly once across all workers"
        );
    }
}
