//! Work-stealing execution over `std::thread` (no external deps): a scoped
//! fork-join primitive and a resident pool behind one [`Exec`] handle.
//!
//! [`parallel_for`] runs one closure over an indexed slice of items on up
//! to `ctxs.len()` workers. Each worker owns one mutable context (the chase
//! threads its per-worker `SolverCache`/`SaturatedState` memos through
//! here) and pulls work from its own bounded deque; idle workers
//! *batch-steal* half of a victim's remaining ranges in one lock
//! acquisition. Results are tagged with their item index and returned in
//! item order, so callers observe a deterministic, sequential-equivalent
//! output regardless of how work was interleaved.
//!
//! Two thread-provisioning strategies share that drain logic:
//!
//! - **Scoped** ([`parallel_for`], `Exec` without a pool): workers are
//!   spawned at entry and joined before return. Zero standing cost, but a
//!   spawn/join round per call — the right trade for one-shot entry points
//!   (`run_variant`).
//! - **Resident** ([`ResidentPool`], `Exec::resident`): a pool of parked
//!   workers is spawned once (per `cqi::Session`) and fed *batches*. A
//!   batch submission publishes one entrant closure — "claim a context
//!   slot and steal until the queues are dry" — to the pool's injector and
//!   wakes the workers; the **submitting thread self-drains the same
//!   batch**, so a batch completes even when every resident worker is busy
//!   (which also makes nested submission from inside a worker
//!   deadlock-free), while idle residents join as extra hands. A
//!   close-and-wait barrier keeps the batch's borrowed state alive until
//!   the last entrant has left.

// The crate is `#![deny(unsafe_code)]`; this module is the project's one
// allowlisted unsafe file (see `cqi-lint`'s policy) — the context-slot
// handoff needs raw-pointer sends, each with its own SAFETY contract.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cqi_obs::trace::{self, Phase};

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::counter::Counter;
use crate::sync::thread::{self, JoinHandle};
use crate::sync::{Condvar, Mutex};

/// Fault-injection hooks for the concurrency model checker's self-tests
/// (`cqi-analysis`): each fault seeds a protocol bug that the checker must
/// demonstrably find, mirroring the fuzz campaign's `--mutate` pattern.
/// Compiled only under `model-check`; production builds have no hook.
#[cfg(feature = "model-check")]
pub mod fault {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// No fault (the default).
    pub const NONE: u8 = 0;
    /// [`super::Batch::exit`] skips the idle wakeup when the last entrant
    /// leaves: the submitter's close-and-wait barrier then misses the
    /// `active == 0` transition and sleeps forever — a lost wakeup the
    /// checker reports as a deadlock.
    pub const SKIP_IDLE_NOTIFY: u8 = 1;

    static MODE: AtomicU8 = AtomicU8::new(NONE);

    /// Arms a fault for the current process. Model-checker self-tests run
    /// single-process and restore [`NONE`] when done.
    pub fn set(mode: u8) {
        MODE.store(mode, Ordering::SeqCst);
    }

    pub(crate) fn skips_idle_notify() -> bool {
        MODE.load(Ordering::SeqCst) == SKIP_IDLE_NOTIFY
    }
}

/// How many items a worker claims from its own queue per lock acquisition.
/// Small enough to keep the tail of a wave balanced, large enough that the
/// lock is off the hot path.
fn batch_size(items: usize, workers: usize) -> usize {
    (items / (workers * 4)).clamp(1, 64)
}

/// Seeds one contiguous range per worker (cache-friendly); the deques are
/// bounded by construction (≤ `items` entries total).
fn seed_queues(items: usize, workers: usize) -> Vec<Mutex<VecDeque<Range<usize>>>> {
    (0..workers)
        .map(|w| {
            let per = items.div_ceil(workers);
            let start = (w * per).min(items);
            let end = ((w + 1) * per).min(items);
            let mut q = VecDeque::new();
            if start < end {
                q.push_back(start..end);
            }
            Mutex::new(q)
        })
        .collect()
}

/// Pops a batch from the worker's own deque (front), or batch-steals half
/// of a victim's backmost range. Returns `None` when every queue is empty.
fn pop_or_steal(
    queues: &[Mutex<VecDeque<Range<usize>>>],
    worker: usize,
    batch: usize,
    steals: &Counter,
) -> Option<Range<usize>> {
    {
        let mut q = queues[worker].lock().unwrap();
        if let Some(r) = q.pop_front() {
            if r.len() > batch {
                q.push_front(r.start + batch..r.end);
                return Some(r.start..r.start + batch);
            }
            return Some(r);
        }
    }
    // Steal: scan the other workers round-robin from our right neighbour;
    // take the back half of the victim's backmost range (batch-steal — one
    // lock, up to half the victim's pending work).
    let n = queues.len();
    for off in 1..n {
        let victim = (worker + off) % n;
        let mut q = queues[victim].lock().unwrap();
        if let Some(r) = q.pop_back() {
            steals.inc();
            if r.len() > 1 {
                let mid = r.start + r.len() / 2;
                q.push_back(r.start..mid);
                return Some(mid..r.end);
            }
            return Some(r);
        }
    }
    None
}

/// One worker's drain loop: claim-or-steal ranges until every queue is
/// empty, collecting `(index, result)` pairs.
fn drain_queues<T, C, R, F>(
    queues: &[Mutex<VecDeque<Range<usize>>>],
    worker: usize,
    batch: usize,
    steals: &Counter,
    ctx: &mut C,
    items: &[T],
    f: &F,
) -> Vec<(usize, R)>
where
    F: Fn(&mut C, usize, &T) -> R,
{
    let mut got: Vec<(usize, R)> = Vec::new();
    while let Some(range) = pop_or_steal(queues, worker, batch, steals) {
        for i in range {
            got.push((i, f(ctx, i, &items[i])));
        }
    }
    got
}

/// Assembles tagged results into item order, panicking on a gap (every
/// index must be processed exactly once).
fn assemble<R>(items: usize, tagged: Vec<(usize, R)>) -> Vec<R> {
    let _s = trace::span_phase("assemble", "sched", Phase::Sched);
    let mut out: Vec<Option<R>> = (0..items).map(|_| None).collect();
    for (i, r) in tagged {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|o| o.expect("every index processed exactly once"))
        .collect()
}

/// Counters one execution run accumulates across its `Exec` fan-outs, for
/// the engine-stats surface (`ChaseStats`).
#[derive(Debug, Default)]
pub struct RunCounters {
    /// Ranges taken from another worker's queue.
    pub steals: Counter,
    /// Fan-outs served by the resident pool.
    pub resident_batches: Counter,
    /// Fan-outs served by scoped spawn-per-call threads.
    pub scoped_batches: Counter,
}

/// A point-in-time copy of [`RunCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCounts {
    pub steals: u64,
    pub resident_batches: u64,
    pub scoped_batches: u64,
}

impl RunCounters {
    pub fn snapshot(&self) -> RunCounts {
        RunCounts {
            steals: self.steals.get(),
            resident_batches: self.resident_batches.get(),
            scoped_batches: self.scoped_batches.get(),
        }
    }
}

/// Runs `f(ctx, index, &items[index])` for every item, fanning out over at
/// most `ctxs.len()` scoped threads (capped at the item count), and returns
/// the results in item order. With a single context (or zero/one items)
/// everything runs inline on `ctxs[0]` — no threads are spawned.
pub fn parallel_for<T, C, R, F>(ctxs: &mut [C], items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    C: Send,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    Exec::scoped().run(ctxs, items, f)
}

/// Execution handle threaded through the schedulers and the chase:
/// [`Exec::run`] is `parallel_for` routed to the resident pool when one is
/// attached (the session path), to scoped threads otherwise (one-shot
/// `run_variant`).
#[derive(Clone, Copy, Default)]
pub struct Exec<'p> {
    pool: Option<&'p ResidentPool>,
    counters: Option<&'p RunCounters>,
}

impl<'p> Exec<'p> {
    /// Spawn-per-call execution (the fallback path).
    pub fn scoped() -> Exec<'static> {
        Exec {
            pool: None,
            counters: None,
        }
    }

    /// Execution over a resident pool; the calling thread still
    /// participates in every batch, so a pool of `n` workers yields up to
    /// `n + 1`-way parallelism.
    pub fn resident(pool: &'p ResidentPool) -> Exec<'p> {
        Exec {
            pool: Some(pool),
            counters: None,
        }
    }

    /// Attaches run counters (steal/batch totals accumulate into them).
    pub fn with_counters(self, counters: &'p RunCounters) -> Exec<'p> {
        Exec {
            counters: Some(counters),
            ..self
        }
    }

    /// Whether fan-outs go to a resident pool (`false` means scoped
    /// threads).
    pub fn is_resident(&self) -> bool {
        self.pool.is_some_and(|p| p.workers() > 0)
    }

    /// The useful fan-out of one nested dispatch: the resident pool's
    /// worker count plus the calling thread. Scoped handles report 1 —
    /// their fan-out is bounded by the caller's context slice, and nested
    /// spawns would oversubscribe rather than reuse idle workers.
    pub fn width(&self) -> usize {
        match self.pool {
            Some(p) => p.workers() + 1,
            None => 1,
        }
    }

    /// Runs `f` over the indexed items on up to `ctxs.len()` workers and
    /// returns results in item order. See [`parallel_for`] for the
    /// contract; the thread source is this handle's strategy.
    pub fn run<T, C, R, F>(&self, ctxs: &mut [C], items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        C: Send,
        R: Send,
        F: Fn(&mut C, usize, &T) -> R + Sync,
    {
        assert!(!ctxs.is_empty(), "Exec::run needs at least one context");
        let workers = ctxs.len().min(items.len());
        if workers <= 1 {
            let ctx = &mut ctxs[0];
            return items.iter().enumerate().map(|(i, t)| f(ctx, i, t)).collect();
        }
        let batch = batch_size(items.len(), workers);
        let queues = seed_queues(items.len(), workers);
        let steals = Counter::new();
        let tagged = match self.pool {
            Some(pool) if pool.workers() > 0 => {
                if let Some(c) = self.counters {
                    c.resident_batches.inc();
                }
                let _s = trace::span("resident_batch", "pool");
                run_resident(pool, ctxs, items, &f, workers, batch, &queues, &steals)
            }
            _ => {
                if let Some(c) = self.counters {
                    c.scoped_batches.inc();
                }
                let _s = trace::span("scoped_batch", "pool");
                run_scoped(ctxs, items, &f, workers, batch, &queues, &steals)
            }
        };
        if let Some(c) = self.counters {
            c.steals.add(steals.get());
        }
        assemble(items.len(), tagged)
    }
}

/// The scoped strategy: spawn workers, drain, join.
// The two run strategies share `Exec::run`'s decomposed batch state; a
// bundling struct would be built and torn apart at exactly one call site.
#[allow(clippy::too_many_arguments)]
fn run_scoped<T, C, R, F>(
    ctxs: &mut [C],
    items: &[T],
    f: &F,
    workers: usize,
    batch: usize,
    queues: &[Mutex<VecDeque<Range<usize>>>],
    steals: &Counter,
) -> Vec<(usize, R)>
where
    T: Sync,
    C: Send,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    thread::scope(|s| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .take(workers)
            .enumerate()
            .map(|(w, ctx)| {
                s.spawn(move || drain_queues(queues, w, batch, steals, ctx, items, f))
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("pool worker panicked"));
        }
    });
    tagged
}

/// Context slots for resident batches. Each raw pointer is claimed by
/// exactly one entrant (a unique `fetch_add` ticket), so no two threads
/// ever alias a context; `C: Send` makes shipping that exclusive borrow to
/// a pool thread sound.
struct CtxSlots<C>(Vec<*mut C>);
// SAFETY: sharing `CtxSlots` across threads only shares the *pointers*;
// `run_resident` hands out each slot index at most once (unique `fetch_add`
// ticket), so no two threads ever dereference the same `*mut C`, and
// `C: Send` makes moving that exclusive access to another thread sound.
// No `&C` is ever produced, so `C: Sync` is not required.
unsafe impl<C: Send> Sync for CtxSlots<C> {}

impl<C> CtxSlots<C> {
    /// Raw pointer to slot `i`. A caller holding a unique ticket for the
    /// slot may dereference it mutably — no other thread claims it.
    fn slot(&self, i: usize) -> *mut C {
        self.0[i]
    }
}

/// The resident strategy: publish one entrant closure to the pool, drain
/// the batch on the calling thread too, and barrier until every entrant
/// has left.
// Same decomposed batch state as `run_scoped`; see the note there.
#[allow(clippy::too_many_arguments)]
fn run_resident<T, C, R, F>(
    pool: &ResidentPool,
    ctxs: &mut [C],
    items: &[T],
    f: &F,
    workers: usize,
    batch: usize,
    queues: &[Mutex<VecDeque<Range<usize>>>],
    steals: &Counter,
) -> Vec<(usize, R)>
where
    T: Sync,
    C: Send,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let slots = CtxSlots(ctxs.iter_mut().map(|c| c as *mut C).collect());
    let next_slot = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let work = || {
        // Protocol state (each ticket must be observed exactly once), not a
        // stats counter — hence a modeled atomic at SeqCst, not a Counter.
        let s = next_slot.fetch_add(1, Ordering::SeqCst);
        if s >= workers {
            return;
        }
        // SAFETY: `s` came from a unique `fetch_add` ticket, so this thread
        // is the only one that ever dereferences slot `s`, and the slots
        // outlive every entrant: `run_batch`'s close-and-wait barrier keeps
        // this frame (and `ctxs` behind it) alive until the last entrant
        // has left, on the normal path and on unwind.
        let ctx: &mut C = unsafe { &mut *slots.slot(s) };
        let got = drain_queues(queues, s, batch, steals, ctx, items, f);
        if !got.is_empty() {
            results.lock().unwrap().extend(got);
        }
    };
    pool.run_batch(workers - 1, &work);
    results.into_inner().unwrap()
}

/// State of one submitted batch, shared between the submitter and the
/// resident workers that join it.
struct Batch {
    /// The entrant closure, borrowed from the submitter's stack with its
    /// lifetime erased. Dereferenced only between a successful
    /// [`Batch::try_enter`] and the matching exit, and the submitter blocks
    /// until `closed && active == 0` before unwinding its frame — so the
    /// borrow is live for every call.
    work: &'static (dyn Fn() + Sync),
    state: Mutex<BatchState>,
    /// Signalled when `active` drops to zero.
    idle: Condvar,
}

#[derive(Default)]
struct BatchState {
    /// No further entrants; set by the submitter at barrier time.
    closed: bool,
    /// Entrants currently inside `work`.
    active: usize,
    /// An entrant's `work` call panicked (re-raised by the submitter).
    panicked: bool,
}

impl Batch {
    fn try_enter(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return false;
        }
        st.active += 1;
        true
    }

    fn exit(&self, panicked: bool) {
        let mut st = self.state.lock().unwrap();
        st.active -= 1;
        st.panicked |= panicked;
        if st.active == 0 {
            #[cfg(feature = "model-check")]
            if fault::skips_idle_notify() {
                return;
            }
            self.idle.notify_all();
        }
    }
}

/// Closes the batch and waits out in-flight entrants when dropped — on the
/// normal path *and* when the submitter's own drain unwinds, so resident
/// workers never outlive the borrows captured in `work`.
struct BatchGuard<'a> {
    pool: &'a ResidentPool,
    batch: &'a Arc<Batch>,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        // These locks may be taken while this thread is already unwinding (a
        // panicking batch closure); like `std`, the instrumented primitives
        // only poison when a panic *starts* inside a critical section, so
        // plain `unwrap` here stays correct on both layers.
        let mut st = self.batch.state.lock().unwrap();
        st.closed = true;
        while st.active > 0 {
            st = self.batch.idle.wait(st).unwrap();
        }
        let panicked = st.panicked;
        drop(st);
        // Sweep tickets no worker redeemed, so closed batches don't pile up
        // in the injector.
        let mut inj = self.pool.shared.inj.lock().unwrap();
        inj.tickets.retain(|t| !Arc::ptr_eq(t, self.batch));
        drop(inj);
        if panicked && !std::thread::panicking() {
            panic!("resident pool worker panicked");
        }
    }
}

#[derive(Default)]
struct Injector {
    /// One ticket per requested helper; a worker redeems a ticket by
    /// joining the batch (or drops it if the batch already closed).
    tickets: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct PoolShared {
    inj: Mutex<Injector>,
    ready: Condvar,
}

/// A resident worker pool: `threads` parked OS threads, spawned once and
/// fed batches through [`ResidentPool::run_batch`] (normally via
/// [`Exec::resident`]). Dropping the pool shuts the workers down.
pub struct ResidentPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ResidentPool {
    /// Spawns `threads` resident workers. A pool of zero workers is valid
    /// (every batch just runs on the submitting thread).
    pub fn new(threads: usize) -> ResidentPool {
        let shared = Arc::new(PoolShared {
            inj: Mutex::new(Injector::default()),
            ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ResidentPool { shared, handles }
    }

    /// Number of resident workers.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one batch: requests up to `helpers` resident workers to join,
    /// runs `work` on the calling thread, and blocks until every joined
    /// worker has left. `work` must be reentrant — each entrant calls it
    /// once, concurrently. Nested `run_batch` from inside `work` is safe
    /// (the nested submitter self-drains).
    pub fn run_batch(&self, helpers: usize, work: &(dyn Fn() + Sync)) {
        // SAFETY: this transmute changes only the reference's lifetime (the
        // pointee type is identical), which is the minimal possible scope
        // for the cast — the erased borrow must live inside `Batch` because
        // workers redeem tickets asynchronously. It is sound because no
        // entrant can touch `work` outside the submitter's frame:
        // `try_enter` fails once the batch is closed, and `BatchGuard`
        // (dropped on the normal path and on unwind) closes the batch and
        // blocks until `active == 0` before this frame is torn down.
        let work: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(work) };
        let batch = Arc::new(Batch {
            work,
            state: Mutex::new(BatchState::default()),
            idle: Condvar::new(),
        });
        let helpers = helpers.min(self.handles.len());
        if helpers > 0 {
            let mut inj = self.shared.inj.lock().unwrap();
            for _ in 0..helpers {
                inj.tickets.push_back(Arc::clone(&batch));
            }
            drop(inj);
            self.shared.ready.notify_all();
        }
        let _guard = BatchGuard {
            pool: self,
            batch: &batch,
        };
        work();
        // _guard drops here: close, wait out helpers, sweep stale tickets.
    }
}

impl Drop for ResidentPool {
    fn drop(&mut self) {
        {
            let mut inj = self.shared.inj.lock().unwrap();
            inj.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut inj = shared.inj.lock().unwrap();
            loop {
                if inj.shutdown {
                    return;
                }
                if let Some(b) = inj.tickets.pop_front() {
                    break b;
                }
                inj = shared.ready.wait(inj).unwrap();
            }
        };
        if batch.try_enter() {
            // Trap panics so the submitter can re-raise them at its barrier
            // (mirroring scoped join semantics) and this worker keeps
            // serving later batches.
            let r = catch_unwind(AssertUnwindSafe(|| (batch.work)()));
            batch.exit(r.is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let mut ctxs = vec![(), (), (), ()];
        let out = parallel_for(&mut ctxs, &items, |_, i, x| {
            assert_eq!(i, *x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let items: Vec<usize> = (0..777).collect();
        let hits = AtomicUsize::new(0);
        let mut ctxs = vec![0usize; 3];
        let out = parallel_for(&mut ctxs, &items, |ctx, _, x| {
            *ctx += 1;
            hits.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 777);
        assert_eq!(out.len(), 777);
        // Per-worker contexts saw disjoint shares that sum to the total.
        assert_eq!(ctxs.iter().sum::<usize>(), 777);
    }

    #[test]
    fn single_context_runs_inline() {
        let items = vec![1, 2, 3];
        let mut ctxs = vec![Vec::<usize>::new()];
        parallel_for(&mut ctxs, &items, |ctx, i, _| ctx.push(i));
        assert_eq!(ctxs[0], vec![0, 1, 2], "inline path preserves order");
    }

    #[test]
    fn empty_items_is_a_noop() {
        let mut ctxs = vec![(), ()];
        let out: Vec<u8> = parallel_for(&mut ctxs, &Vec::<u8>::new(), |_, _, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathologically slow item at index 0; the rest are instant.
        // All items must still complete (stealing redistributes the tail).
        let items: Vec<usize> = (0..256).collect();
        let mut ctxs = vec![(); 4];
        let out = parallel_for(&mut ctxs, &items, |_, _, x| {
            if *x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            *x + 1
        });
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }

    #[test]
    fn resident_results_match_scoped() {
        let pool = ResidentPool::new(3);
        let items: Vec<usize> = (0..1000).collect();
        let mut ctxs = vec![(); 4];
        let out = Exec::resident(&pool).run(&mut ctxs, &items, |_, i, x| {
            assert_eq!(i, *x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn resident_pool_is_reusable_across_batches() {
        let pool = ResidentPool::new(2);
        let exec = Exec::resident(&pool);
        let items: Vec<usize> = (0..300).collect();
        for round in 0..20 {
            let mut ctxs = vec![0usize; 3];
            let out = exec.run(&mut ctxs, &items, |ctx, _, x| {
                *ctx += 1;
                x + round
            });
            assert_eq!(out, (0..300).map(|x| x + round).collect::<Vec<_>>());
            assert_eq!(ctxs.iter().sum::<usize>(), 300);
        }
    }

    #[test]
    fn resident_zero_workers_runs_on_caller() {
        let pool = ResidentPool::new(0);
        let items: Vec<usize> = (0..64).collect();
        let mut ctxs = vec![(); 4];
        let out = Exec::resident(&pool).run(&mut ctxs, &items, |_, _, x| x * 2);
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_resident_batches_complete() {
        // A batch item that itself fans out through the same pool — the
        // inner submitter self-drains, so this terminates even when every
        // resident worker is occupied by the outer batch.
        let pool = ResidentPool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        let mut ctxs = vec![(); 3];
        let out = Exec::resident(&pool).run(&mut ctxs, &outer, |_, _, x| {
            let inner: Vec<usize> = (0..50).collect();
            let mut inner_ctxs = vec![(); 2];
            let inner_out =
                Exec::resident(&pool).run(&mut inner_ctxs, &inner, |_, _, y| y + x);
            inner_out.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|x| (0..50).map(|y| y + x).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_counters_observe_batches() {
        let pool = ResidentPool::new(2);
        let counters = RunCounters::default();
        let exec = Exec::resident(&pool).with_counters(&counters);
        let items: Vec<usize> = (0..200).collect();
        let mut ctxs = vec![(); 3];
        exec.run(&mut ctxs, &items, |_, _, x| *x);
        assert_eq!(counters.resident_batches.get(), 1);
        assert_eq!(counters.scoped_batches.get(), 0);
        // Scoped handle counts on the other ledger.
        let scoped = Exec::scoped().with_counters(&counters);
        let mut ctxs2 = vec![(); 2];
        scoped.run(&mut ctxs2, &items, |_, _, x| *x);
        assert_eq!(counters.scoped_batches.get(), 1);
    }

    #[test]
    fn worker_panic_reaches_the_submitter_and_pool_survives() {
        let pool = ResidentPool::new(2);
        let items: Vec<usize> = (0..64).collect();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ctxs = vec![(); 3];
            Exec::resident(&pool).run(&mut ctxs, &items, |_, _, x| {
                if *x == 13 {
                    panic!("boom");
                }
                *x
            });
        }));
        assert!(r.is_err(), "panic must propagate to the submitter");
        // The pool still serves later batches.
        let mut ctxs = vec![(); 3];
        let out = Exec::resident(&pool).run(&mut ctxs, &items, |_, _, x| x + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }
}
