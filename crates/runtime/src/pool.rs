//! A scoped work-stealing pool over `std::thread` (no external deps).
//!
//! [`parallel_for`] runs one closure over an indexed slice of items on up
//! to `ctxs.len()` scoped workers. Each worker owns one mutable context
//! (the chase threads its per-worker `SolverCache`/`SaturatedState` memos
//! through here) and pulls work from its own bounded deque; idle workers
//! *batch-steal* half of a victim's remaining ranges in one lock
//! acquisition. Results are tagged with their item index and returned in
//! item order, so callers observe a deterministic, sequential-equivalent
//! output regardless of how work was interleaved.
//!
//! Workers are *scoped per call* (spawned at entry, joined before return) —
//! a fork-join primitive, not a resident pool. Callers amortize the spawn
//! cost by batching: the frontier scheduler hands over whole waves, spills
//! narrow waves inline, and keeps cheap phases inline below a fan-out
//! threshold.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

/// How many items a worker claims from its own queue per lock acquisition.
/// Small enough to keep the tail of a wave balanced, large enough that the
/// lock is off the hot path.
fn batch_size(items: usize, workers: usize) -> usize {
    (items / (workers * 4)).clamp(1, 64)
}

/// Pops a batch from the worker's own deque (front), or batch-steals half
/// of a victim's backmost range. Returns `None` when every queue is empty.
fn pop_or_steal(
    queues: &[Mutex<VecDeque<Range<usize>>>],
    worker: usize,
    batch: usize,
) -> Option<Range<usize>> {
    {
        let mut q = queues[worker].lock().unwrap();
        if let Some(r) = q.pop_front() {
            if r.len() > batch {
                q.push_front(r.start + batch..r.end);
                return Some(r.start..r.start + batch);
            }
            return Some(r);
        }
    }
    // Steal: scan the other workers round-robin from our right neighbour;
    // take the back half of the victim's backmost range (batch-steal — one
    // lock, up to half the victim's pending work).
    let n = queues.len();
    for off in 1..n {
        let victim = (worker + off) % n;
        let mut q = queues[victim].lock().unwrap();
        if let Some(r) = q.pop_back() {
            if r.len() > 1 {
                let mid = r.start + r.len() / 2;
                q.push_back(r.start..mid);
                return Some(mid..r.end);
            }
            return Some(r);
        }
    }
    None
}

/// Runs `f(ctx, index, &items[index])` for every item, fanning out over at
/// most `ctxs.len()` scoped threads (capped at the item count), and returns
/// the results in item order. With a single context (or zero/one items)
/// everything runs inline on `ctxs[0]` — no threads are spawned.
pub fn parallel_for<T, C, R, F>(ctxs: &mut [C], items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    C: Send,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    assert!(!ctxs.is_empty(), "parallel_for needs at least one context");
    let workers = ctxs.len().min(items.len());
    if workers <= 1 {
        let ctx = &mut ctxs[0];
        return items.iter().enumerate().map(|(i, t)| f(ctx, i, t)).collect();
    }
    let batch = batch_size(items.len(), workers);
    // Seed each worker's deque with one contiguous range (cache-friendly);
    // the deques are bounded by construction (≤ items.len() entries total).
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> = (0..workers)
        .map(|w| {
            let per = items.len().div_ceil(workers);
            let start = (w * per).min(items.len());
            let end = ((w + 1) * per).min(items.len());
            let mut q = VecDeque::new();
            if start < end {
                q.push_back(start..end);
            }
            Mutex::new(q)
        })
        .collect();
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .take(workers)
            .enumerate()
            .map(|(w, ctx)| {
                let queues = &queues;
                let f = &f;
                s.spawn(move || {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    while let Some(range) = pop_or_steal(queues, w, batch) {
                        for i in range {
                            got.push((i, f(ctx, i, &items[i])));
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("pool worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("every index processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let mut ctxs = vec![(), (), (), ()];
        let out = parallel_for(&mut ctxs, &items, |_, i, x| {
            assert_eq!(i, *x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let items: Vec<usize> = (0..777).collect();
        let hits = AtomicUsize::new(0);
        let mut ctxs = vec![0usize; 3];
        let out = parallel_for(&mut ctxs, &items, |ctx, _, x| {
            *ctx += 1;
            hits.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 777);
        assert_eq!(out.len(), 777);
        // Per-worker contexts saw disjoint shares that sum to the total.
        assert_eq!(ctxs.iter().sum::<usize>(), 777);
    }

    #[test]
    fn single_context_runs_inline() {
        let items = vec![1, 2, 3];
        let mut ctxs = vec![Vec::<usize>::new()];
        parallel_for(&mut ctxs, &items, |ctx, i, _| ctx.push(i));
        assert_eq!(ctxs[0], vec![0, 1, 2], "inline path preserves order");
    }

    #[test]
    fn empty_items_is_a_noop() {
        let mut ctxs = vec![(), ()];
        let out: Vec<u8> = parallel_for(&mut ctxs, &Vec::<u8>::new(), |_, _, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathologically slow item at index 0; the rest are instant.
        // All items must still complete (stealing redistributes the tail).
        let items: Vec<usize> = (0..256).collect();
        let mut ctxs = vec![(); 4];
        let out = parallel_for(&mut ctxs, &items, |_, _, x| {
            if *x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            *x + 1
        });
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }
}
