//! Synchronization shim: the single point where the runtime's protocols
//! bind to their synchronization primitives.
//!
//! Normally this module re-exports `std::sync` types unchanged — zero
//! cost, zero behavior change. Under `--features model-check` the same
//! names resolve to the vendored `loom` model checker's instrumented
//! types instead, so every lock acquisition, condvar wait/notify, and
//! protocol-relevant atomic op becomes a scheduling point of a bounded
//! exhaustive interleaving search (see `cqi-analysis`).
//!
//! Rules for runtime code:
//!
//! - `pool.rs`, `dedupe.rs`, and `memo.rs` must route **all**
//!   synchronization through this module: `sync::Mutex`, `sync::Condvar`,
//!   `sync::atomic::*`, `sync::thread::{spawn, scope}`.
//! - Pure *statistics* counters (never read back to make a control-flow
//!   decision) use [`counter::Counter`], which is deliberately **not**
//!   instrumented: branching schedules on observability counters would
//!   blow up the model state space for nothing. This is also the one
//!   designated home of `Ordering::Relaxed` in this crate (enforced by
//!   `cqi-lint`).
//! - Hash-based placement that must be replay-deterministic under the
//!   model uses [`hash::RandomState`].

#[cfg(not(feature = "model-check"))]
pub use std::sync::{Condvar, Mutex, MutexGuard, TryLockError};

#[cfg(feature = "model-check")]
pub use loom::sync::{Condvar, Mutex, MutexGuard, TryLockError};

/// Atomics for *protocol* state (read back to make decisions): modeled
/// under `model-check`. `Ordering` is always the std enum; the modeled
/// types accept it for API compatibility but execute as `SeqCst`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(feature = "model-check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(feature = "model-check")]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
}

/// Thread spawn/scope used by the pool: managed (gated by the scheduler)
/// under `model-check`, plain `std::thread` otherwise.
pub mod thread {
    #[cfg(not(feature = "model-check"))]
    pub use std::thread::{scope, spawn, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(feature = "model-check")]
    pub use loom::thread::{scope, spawn, JoinHandle, Scope, ScopedJoinHandle};
}

/// Hasher state for hash-based placement (memo stripe selection): std's
/// seeded `RandomState` normally, a fixed-seed hasher under the model so
/// replayed executions keep identical placement.
pub mod hash {
    #[cfg(not(feature = "model-check"))]
    pub use std::collections::hash_map::RandomState;

    #[cfg(feature = "model-check")]
    pub use loom::hash::FixedState as RandomState;
}

/// Monotonic statistics counters, exempt from model instrumentation.
pub mod counter {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A monotonically increasing stats counter. Writers only add; readers
    /// only observe for reporting. Never use one to gate control flow —
    /// that would be protocol state and belongs in [`super::atomic`].
    ///
    /// This module is a designated `Ordering::Relaxed` zone: the counters
    /// carry no synchronization obligations.
    #[derive(Debug, Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        pub const fn new() -> Counter {
            Counter(AtomicU64::new(0))
        }

        #[inline]
        pub fn inc(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }

        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }
}
