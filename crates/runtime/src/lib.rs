//! # cqi-runtime
//!
//! Execution substrate for the chase: a work-stealing thread pool
//! (std-only, no external deps) usable either as per-call scoped threads
//! or as a long-lived [`ResidentPool`], a sharded concurrent
//! duplicate-detection set keyed on isomorphism invariants, a lock-striped
//! shared memo ([`StripedMemo`]) for cross-worker solver-result sharing,
//! and a [`FrontierScheduler`] that drives breadth-first frontier
//! expansion either sequentially or in parallel — with **byte-identical
//! results** either way. An [`Exec`] handle picks the thread source
//! (scoped vs resident) without changing any drain or merge logic.
//!
//! ## Determinism model
//!
//! Algorithm 1 of the paper explores a frontier of independent c-instance
//! branch candidates. Expanding a candidate is a pure function of the
//! candidate (memo state only affects speed), so candidates can be expanded
//! concurrently as long as
//!
//! 1. **duplicate detection is order-stable** — when several candidates of
//!    one isomorphism class race, the one that the *sequential* scheduler
//!    would have kept (the earliest in FIFO order) must win, and
//! 2. **results are collected in FIFO order** — accepted instances and
//!    newly produced children are merged back in the order the sequential
//!    scheduler would have produced them.
//!
//! The [`ShardedDedupe`] set solves (1) with a sequence-priority protocol
//! ([`ShardedDedupe::offer`] / [`ShardedDedupe::confirm`]); the
//! [`ParallelScheduler`] solves (2) by processing the frontier in FIFO
//! waves and tagging every expansion with its frontier position before
//! merging. See the crate-level tests plus `cqi-core`'s
//! `parallel_props.rs` for the property suites asserting sequential ≡
//! parallel.

#![deny(unsafe_code)]

pub mod dedupe;
pub mod memo;
pub mod pool;
pub mod scheduler;
pub mod sync;

pub use dedupe::{DedupeStats, Offer, SetKey, ShardedDedupe};
pub use memo::{MemoCounts, MemoStats, StripedMemo};
pub use pool::{parallel_for, Exec, ResidentPool, RunCounters, RunCounts};
pub use scheduler::{
    DriveStats, Expansion, FrontierScheduler, FrontierTask, ParallelScheduler, SequentialScheduler,
    WaveVisible,
};

/// Resolves a user-facing thread budget: `0` means "all available
/// parallelism", anything else is taken literally (minimum 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_zero_is_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }
}
