//! Integrity constraints: keys and foreign keys (§3.1 allows "standard
//! constraints like key constraints, foreign key constraints").

use crate::relation::RelId;

/// A key constraint: the listed attribute positions functionally determine
/// the whole tuple. A primary key is just a `Key`; additional `Key`s model
/// unique constraints / FDs whose left side is a key of the relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Key {
    pub rel: RelId,
    pub attrs: Vec<usize>,
}

/// A foreign key: `child.child_attrs ⟶ parent.parent_attrs`.
///
/// Besides its integrity semantics, an FK unifies the attribute domains on
/// both sides, so that a labeled null flowing through the child column may be
/// joined against the parent column in a c-instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    pub child: RelId,
    pub child_attrs: Vec<usize>,
    pub parent: RelId,
    pub parent_attrs: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs() {
        let k = Key {
            rel: RelId(0),
            attrs: vec![0],
        };
        assert_eq!(k.attrs, vec![0]);
        let fk = ForeignKey {
            child: RelId(1),
            child_attrs: vec![0],
            parent: RelId(0),
            parent_attrs: vec![0],
        };
        assert_eq!(fk.parent, RelId(0));
    }
}
