//! Constant values, string interning, and a totally ordered floating-point
//! wrapper.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::domain::DomainType;

/// Process-wide string interner backing [`Value::Str`]. The chase clones
/// c-instances (and therefore their constants) at every branch point;
/// sharing one `Arc<str>` per distinct string turns those deep copies into
/// refcount bumps and makes equality checks pointer-fast in the common case.
static INTERNER: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();

/// Upper bound on distinct interned strings; beyond it, new strings are
/// allocated uninterned so a pathological workload cannot leak memory
/// through the process-wide set.
const INTERNER_CAP: usize = 1 << 20;

/// Returns the canonical shared allocation for `s`.
pub fn intern(s: &str) -> Arc<str> {
    let set = INTERNER.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = set.lock().unwrap();
    if let Some(hit) = set.get(s) {
        return Arc::clone(hit);
    }
    let fresh: Arc<str> = Arc::from(s);
    if set.len() < INTERNER_CAP {
        set.insert(Arc::clone(&fresh));
    }
    fresh
}

/// A finite, non-NaN `f64` with a total order, usable as a map key.
///
/// Query constants and generated models never need NaN or infinities, so the
/// constructor rejects them; this keeps `Ord`/`Hash` honest.
#[derive(Clone, Copy, PartialEq)]
pub struct R64(f64);

impl R64 {
    /// Wraps a finite float. Panics on NaN/infinite input — such values never
    /// arise from parsing or model generation, so a panic indicates a bug.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite(), "R64 requires a finite float, got {v}");
        R64(v)
    }

    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for R64 {}

impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for R64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite floats always compare.
        self.0.partial_cmp(&other.0).expect("R64 is always finite")
    }
}

impl std::hash::Hash for R64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // -0.0 == 0.0 must hash identically.
        let canonical = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        canonical.to_bits().hash(state);
    }
}

impl fmt::Debug for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for R64 {
    fn from(v: f64) -> Self {
        R64::new(v)
    }
}

/// A constant from an attribute domain (§3.1: `Dom`).
///
/// The ordering is only meaningful within one [`DomainType`]; the derived
/// cross-variant order (Int < Real < Str) is used solely to make collections
/// deterministic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Int(i64),
    Real(R64),
    /// Interned text (see [`intern`]): cloning is a refcount bump, so chase
    /// branching never deep-copies string payloads.
    Str(Arc<str>),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(intern(s.as_ref()))
    }

    pub fn real(v: f64) -> Self {
        Value::Real(R64::new(v))
    }

    /// The domain type this constant belongs to.
    pub fn domain_type(&self) -> DomainType {
        match self {
            Value::Int(_) => DomainType::Int,
            Value::Real(_) => DomainType::Real,
            Value::Str(_) => DomainType::Text,
        }
    }

    /// Compares two values of the same domain type.
    ///
    /// Int and Real compare numerically against each other (a price constant
    /// `2.25` must compare with an integer `3`); strings compare
    /// lexicographically. Returns `None` when kinds are incomparable
    /// (number vs string), which callers treat as a type error.
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Real(a), Value::Real(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Real(b)) => (*a as f64).partial_cmp(&b.get()),
            (Value::Real(a), Value::Int(b)) => a.get().partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Numeric view for order reasoning (`None` for strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(r.get()),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn r64_total_order() {
        let a = R64::new(1.5);
        let b = R64::new(2.25);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn r64_negative_zero_hashes_like_zero() {
        assert_eq!(R64::new(0.0), R64::new(-0.0));
        assert_eq!(hash_of(&R64::new(0.0)), hash_of(&R64::new(-0.0)));
    }

    #[test]
    #[should_panic]
    fn r64_rejects_nan() {
        let _ = R64::new(f64::NAN);
    }

    #[test]
    fn value_cross_numeric_compare() {
        assert_eq!(
            Value::Int(2).try_cmp(&Value::real(2.25)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::real(3.5).try_cmp(&Value::Int(3)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(2).try_cmp(&Value::str("x")), None);
    }

    #[test]
    fn value_domain_types() {
        assert_eq!(Value::Int(1).domain_type(), DomainType::Int);
        assert_eq!(Value::real(1.0).domain_type(), DomainType::Real);
        assert_eq!(Value::str("a").domain_type(), DomainType::Text);
    }

    #[test]
    fn interned_strings_share_allocation() {
        let a = Value::str("shared-payload");
        let b = Value::str(String::from("shared-payload"));
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => {
                assert!(Arc::ptr_eq(x, y), "equal strings must intern to one Arc");
            }
            _ => unreachable!(),
        }
        assert_eq!(a, b);
    }

    #[test]
    fn clone_is_refcount_bump() {
        let a = Value::str("clone-me");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("Eve").to_string(), "'Eve'");
        assert_eq!(Value::real(2.25).to_string(), "2.25");
    }
}
