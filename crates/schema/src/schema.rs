//! Database schemas and the builder that performs domain unification.

use std::collections::HashMap;
use std::fmt;

use crate::constraint::{ForeignKey, Key};
use crate::domain::{DomainId, DomainType};
use crate::relation::{Attribute, RelId, Relation};

/// Errors raised while assembling a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    DuplicateRelation(String),
    UnknownRelation(String),
    UnknownAttribute { rel: String, attr: String },
    ArityMismatch { context: String },
    DomainTypeMismatch { context: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateRelation(n) => write!(f, "duplicate relation `{n}`"),
            SchemaError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            SchemaError::UnknownAttribute { rel, attr } => {
                write!(f, "unknown attribute `{rel}.{attr}`")
            }
            SchemaError::ArityMismatch { context } => write!(f, "arity mismatch: {context}"),
            SchemaError::DomainTypeMismatch { context } => {
                write!(f, "domain type mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A database schema `R = (R1, ..., Rr)` with constraints and unified
/// attribute domains.
#[derive(Clone, Debug)]
pub struct Schema {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
    keys: Vec<Key>,
    foreign_keys: Vec<ForeignKey>,
    /// `domain_types[d.index()]` is the constant kind of domain `d`.
    domain_types: Vec<DomainType>,
}

impl Schema {
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    pub fn keys_of(&self, rel: RelId) -> impl Iterator<Item = &Key> {
        self.keys.iter().filter(move |k| k.rel == rel)
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    pub fn num_domains(&self) -> usize {
        self.domain_types.len()
    }

    pub fn domain_type(&self, d: DomainId) -> DomainType {
        self.domain_types[d.index()]
    }

    /// Domain of attribute `attr` of relation `rel`.
    pub fn attr_domain(&self, rel: RelId, attr: usize) -> DomainId {
        self.relation(rel).attrs[attr].domain
    }
}

#[derive(Default)]
pub struct SchemaBuilder {
    relations: Vec<(String, Vec<(String, DomainType)>)>,
    keys: Vec<(String, Vec<String>)>,
    fks: Vec<(String, Vec<String>, String, Vec<String>)>,
    same_domain: Vec<((String, String), (String, String))>,
}

impl SchemaBuilder {
    /// Declares a relation with `(attribute, type)` columns.
    pub fn relation(
        mut self,
        name: &str,
        attrs: &[(&str, DomainType)],
    ) -> Self {
        self.relations.push((
            name.to_owned(),
            attrs
                .iter()
                .map(|(n, t)| ((*n).to_owned(), *t))
                .collect(),
        ));
        self
    }

    /// Declares a key of `rel` over the named attributes.
    pub fn key(mut self, rel: &str, attrs: &[&str]) -> Self {
        self.keys.push((
            rel.to_owned(),
            attrs.iter().map(|a| (*a).to_owned()).collect(),
        ));
        self
    }

    /// Declares a foreign key `child(child_attrs) ⟶ parent(parent_attrs)`.
    pub fn foreign_key(
        mut self,
        child: &str,
        child_attrs: &[&str],
        parent: &str,
        parent_attrs: &[&str],
    ) -> Self {
        self.fks.push((
            child.to_owned(),
            child_attrs.iter().map(|a| (*a).to_owned()).collect(),
            parent.to_owned(),
            parent_attrs.iter().map(|a| (*a).to_owned()).collect(),
        ));
        self
    }

    /// Explicitly unifies two attribute domains without an FK (e.g. the two
    /// `Serves.price` occurrences compared across self-joins already share a
    /// domain, but `Likes.beer` vs `Serves.beer` may be declared directly).
    pub fn same_domain(mut self, a: (&str, &str), b: (&str, &str)) -> Self {
        self.same_domain.push((
            (a.0.to_owned(), a.1.to_owned()),
            (b.0.to_owned(), b.1.to_owned()),
        ));
        self
    }

    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut by_name: HashMap<String, RelId> = HashMap::new();
        let mut relations: Vec<Relation> = Vec::with_capacity(self.relations.len());
        for (i, (name, attrs)) in self.relations.iter().enumerate() {
            let lower = name.to_ascii_lowercase();
            if by_name.insert(lower, RelId(i as u32)).is_some() {
                return Err(SchemaError::DuplicateRelation(name.clone()));
            }
            relations.push(Relation {
                name: name.clone(),
                attrs: attrs
                    .iter()
                    .map(|(n, t)| Attribute {
                        name: n.clone(),
                        domain_type: *t,
                        domain: DomainId(0), // assigned below
                    })
                    .collect(),
            });
        }

        // Union-find over all (rel, attr) slots for domain unification.
        let mut slot_of: HashMap<(RelId, usize), usize> = HashMap::new();
        let mut slots: Vec<(RelId, usize)> = Vec::new();
        for (ri, rel) in relations.iter().enumerate() {
            for ai in 0..rel.attrs.len() {
                slot_of.insert((RelId(ri as u32), ai), slots.len());
                slots.push((RelId(ri as u32), ai));
            }
        }
        let mut parent: Vec<usize> = (0..slots.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        };

        let resolve = |by_name: &HashMap<String, RelId>,
                       relations: &[Relation],
                       rel: &str,
                       attr: &str|
         -> Result<(RelId, usize), SchemaError> {
            let rid = by_name
                .get(&rel.to_ascii_lowercase())
                .copied()
                .ok_or_else(|| SchemaError::UnknownRelation(rel.to_owned()))?;
            let ai = relations[rid.index()].attr_index(attr).ok_or_else(|| {
                SchemaError::UnknownAttribute {
                    rel: rel.to_owned(),
                    attr: attr.to_owned(),
                }
            })?;
            Ok((rid, ai))
        };

        let mut foreign_keys = Vec::with_capacity(self.fks.len());
        for (child, cattrs, par, pattrs) in &self.fks {
            if cattrs.len() != pattrs.len() {
                return Err(SchemaError::ArityMismatch {
                    context: format!("foreign key {child} -> {par}"),
                });
            }
            let mut fk = ForeignKey {
                child: RelId(0),
                child_attrs: Vec::with_capacity(cattrs.len()),
                parent: RelId(0),
                parent_attrs: Vec::with_capacity(pattrs.len()),
            };
            for (ca, pa) in cattrs.iter().zip(pattrs) {
                let (crid, cai) = resolve(&by_name, &relations, child, ca)?;
                let (prid, pai) = resolve(&by_name, &relations, par, pa)?;
                let (ct, pt) = (
                    relations[crid.index()].attrs[cai].domain_type,
                    relations[prid.index()].attrs[pai].domain_type,
                );
                if ct != pt {
                    return Err(SchemaError::DomainTypeMismatch {
                        context: format!("{child}.{ca} ({ct}) vs {par}.{pa} ({pt})"),
                    });
                }
                union(
                    &mut parent,
                    slot_of[&(crid, cai)],
                    slot_of[&(prid, pai)],
                );
                fk.child = crid;
                fk.parent = prid;
                fk.child_attrs.push(cai);
                fk.parent_attrs.push(pai);
            }
            foreign_keys.push(fk);
        }

        for ((ra, aa), (rb, ab)) in &self.same_domain {
            let (arid, aai) = resolve(&by_name, &relations, ra, aa)?;
            let (brid, bai) = resolve(&by_name, &relations, rb, ab)?;
            let (at, bt) = (
                relations[arid.index()].attrs[aai].domain_type,
                relations[brid.index()].attrs[bai].domain_type,
            );
            if at != bt {
                return Err(SchemaError::DomainTypeMismatch {
                    context: format!("{ra}.{aa} ({at}) vs {rb}.{ab} ({bt})"),
                });
            }
            union(&mut parent, slot_of[&(arid, aai)], slot_of[&(brid, bai)]);
        }

        // Assign dense DomainIds per union-find root.
        let mut root_to_domain: HashMap<usize, DomainId> = HashMap::new();
        let mut domain_types: Vec<DomainType> = Vec::new();
        for (si, (rid, ai)) in slots.iter().enumerate() {
            let root = find(&mut parent, si);
            let did = *root_to_domain.entry(root).or_insert_with(|| {
                let d = DomainId(domain_types.len() as u32);
                domain_types.push(relations[rid.index()].attrs[*ai].domain_type);
                d
            });
            relations[rid.index()].attrs[*ai].domain = did;
        }

        let mut keys = Vec::with_capacity(self.keys.len());
        for (rel, attrs) in &self.keys {
            let rid = by_name
                .get(&rel.to_ascii_lowercase())
                .copied()
                .ok_or_else(|| SchemaError::UnknownRelation(rel.clone()))?;
            let mut idxs = Vec::with_capacity(attrs.len());
            for a in attrs {
                let (_, ai) = resolve(&by_name, &relations, rel, a)?;
                idxs.push(ai);
            }
            keys.push(Key { rel: rid, attrs: idxs });
        }

        Ok(Schema {
            relations,
            by_name,
            keys,
            foreign_keys,
            domain_types,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beers_like() -> Schema {
        Schema::builder()
            .relation("Drinker", &[("name", DomainType::Text), ("addr", DomainType::Text)])
            .relation("Beer", &[("name", DomainType::Text), ("brewer", DomainType::Text)])
            .relation(
                "Serves",
                &[
                    ("bar", DomainType::Text),
                    ("beer", DomainType::Text),
                    ("price", DomainType::Real),
                ],
            )
            .relation(
                "Likes",
                &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
            )
            .key("Drinker", &["name"])
            .foreign_key("Likes", &["drinker"], "Drinker", &["name"])
            .foreign_key("Likes", &["beer"], "Beer", &["name"])
            .foreign_key("Serves", &["beer"], "Beer", &["name"])
            .build()
            .unwrap()
    }

    #[test]
    fn fk_unifies_domains() {
        let s = beers_like();
        let likes = s.rel_id("likes").unwrap();
        let serves = s.rel_id("Serves").unwrap();
        let beer = s.rel_id("BEER").unwrap();
        // Likes.beer, Serves.beer, Beer.name all share a domain.
        let d1 = s.attr_domain(likes, 1);
        let d2 = s.attr_domain(serves, 1);
        let d3 = s.attr_domain(beer, 0);
        assert_eq!(d1, d2);
        assert_eq!(d2, d3);
        // price stays separate.
        assert_ne!(s.attr_domain(serves, 2), d1);
        assert_eq!(s.domain_type(s.attr_domain(serves, 2)), DomainType::Real);
    }

    #[test]
    fn unrelated_attrs_stay_distinct() {
        let s = beers_like();
        let drinker = s.rel_id("Drinker").unwrap();
        let beer = s.rel_id("Beer").unwrap();
        assert_ne!(s.attr_domain(drinker, 1), s.attr_domain(beer, 1));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let err = Schema::builder()
            .relation("R", &[("a", DomainType::Int)])
            .relation("r", &[("b", DomainType::Int)])
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateRelation(_)));
    }

    #[test]
    fn fk_type_mismatch_rejected() {
        let err = Schema::builder()
            .relation("A", &[("x", DomainType::Int)])
            .relation("B", &[("y", DomainType::Text)])
            .foreign_key("A", &["x"], "B", &["y"])
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DomainTypeMismatch { .. }));
    }

    #[test]
    fn key_lookup() {
        let s = beers_like();
        let drinker = s.rel_id("Drinker").unwrap();
        let keys: Vec<_> = s.keys_of(drinker).collect();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].attrs, vec![0]);
    }

    #[test]
    fn same_domain_declaration() {
        let s = Schema::builder()
            .relation("A", &[("x", DomainType::Int)])
            .relation("B", &[("y", DomainType::Int)])
            .same_domain(("A", "x"), ("B", "y"))
            .build()
            .unwrap();
        assert_eq!(
            s.attr_domain(s.rel_id("A").unwrap(), 0),
            s.attr_domain(s.rel_id("B").unwrap(), 0)
        );
    }
}
