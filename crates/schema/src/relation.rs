//! Relation schemas.

use std::fmt;

use crate::domain::{DomainId, DomainType};

/// Index of a relation within a [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// Position of an attribute within its relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One attribute of a relation schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub domain_type: DomainType,
    /// Assigned by the [`crate::SchemaBuilder`] after domain unification.
    pub domain: DomainId,
}

/// A relation schema `R(A1, ..., Ak)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    pub name: String,
    pub attrs: Vec<Attribute>,
}

impl Relation {
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Looks up an attribute position by (case-insensitive) name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation {
            name: "Serves".into(),
            attrs: vec![
                Attribute {
                    name: "bar".into(),
                    domain_type: DomainType::Text,
                    domain: DomainId(0),
                },
                Attribute {
                    name: "beer".into(),
                    domain_type: DomainType::Text,
                    domain: DomainId(1),
                },
                Attribute {
                    name: "price".into(),
                    domain_type: DomainType::Real,
                    domain: DomainId(2),
                },
            ],
        }
    }

    #[test]
    fn arity_and_lookup() {
        let r = sample();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.attr_index("price"), Some(2));
        assert_eq!(r.attr_index("PRICE"), Some(2));
        assert_eq!(r.attr_index("missing"), None);
    }
}
