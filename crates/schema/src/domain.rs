//! Attribute domains.
//!
//! Each attribute draws its constants from a (possibly infinite) domain
//! `Dom(A)` (§3.1). Structurally a domain has a [`DomainType`] (the kind of
//! constants) and an identity [`DomainId`]; attributes linked by foreign keys
//! share one `DomainId` so that query variables ranging over them can be
//! mapped to the same pool of labeled nulls.

use std::fmt;

/// The kind of constants a domain carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DomainType {
    /// 64-bit integers (discrete order — `x < y < x+1` is unsatisfiable).
    Int,
    /// Reals/decimals (dense order).
    Real,
    /// Strings (dense-above lexicographic order, supports `LIKE`).
    Text,
}

impl fmt::Display for DomainType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainType::Int => write!(f, "int"),
            DomainType::Real => write!(f, "real"),
            DomainType::Text => write!(f, "text"),
        }
    }
}

/// Identity of a unified attribute domain within one [`crate::Schema`].
///
/// Two attributes with the same `DomainId` are "the same domain" in the
/// paper's sense: a labeled null created for one may flow into the other.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_domain_type() {
        assert_eq!(DomainType::Int.to_string(), "int");
        assert_eq!(DomainType::Real.to_string(), "real");
        assert_eq!(DomainType::Text.to_string(), "text");
    }

    #[test]
    fn domain_id_index() {
        assert_eq!(DomainId(7).index(), 7);
    }
}
