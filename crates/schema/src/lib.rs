//! # cqi-schema
//!
//! Foundational database vocabulary for the `cqi` workspace: totally ordered
//! [`Value`]s, attribute [`DomainType`]s, relation schemas, and integrity
//! constraints (keys and foreign keys).
//!
//! Attributes that are linked by foreign keys (or explicitly declared to
//! share a domain) are unified into a single [`DomainId`] — this is what the
//! paper means by "two attributes may share the same domain (e.g., when they
//! share the same name or are related by foreign key constraints)" (§3.1).
//! The chase uses the `DomainId` of a query variable to decide which labeled
//! nulls it may be mapped to.

#![deny(unsafe_code)]

pub mod constraint;
pub mod domain;
pub mod relation;
pub mod schema;
pub mod value;

pub use constraint::{ForeignKey, Key};
pub use domain::{DomainId, DomainType};
pub use relation::{AttrId, Attribute, RelId, Relation};
pub use schema::{Schema, SchemaBuilder, SchemaError};
pub use value::{R64, Value};
