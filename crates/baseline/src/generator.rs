//! Schema-driven random database generation.
//!
//! Relations are filled in foreign-key topological order; child columns
//! sample existing parent keys, so generated databases always satisfy the
//! declared foreign keys, and key constraints are respected by retrying
//! colliding rows.

use std::sync::Arc;

use cqi_instance::GroundInstance;
use cqi_schema::{DomainType, RelId, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-relation accounting of what happened to each requested row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelGenStats {
    /// Rows actually inserted (distinct tuples present in the instance).
    pub inserted: usize,
    /// Rows generated identical to an existing tuple (set semantics
    /// deduplicated them away).
    pub duplicates: usize,
    /// Rows abandoned: every retry either collided on a key with a
    /// different payload, or no parent row existed for a foreign key.
    pub abandoned: usize,
}

/// What [`generate_database_with_stats`] produced, per relation. The true
/// database size is `sum(inserted)`, which can be well below
/// `rows_per_relation × relations` on key-dense schemas — fuzz drivers use
/// this to know the actual size instead of assuming the request was met.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Rows requested per relation.
    pub requested_per_relation: usize,
    /// One entry per relation, indexed by `RelId`.
    pub per_relation: Vec<RelGenStats>,
}

impl GenStats {
    /// Total tuples actually inserted across all relations.
    pub fn inserted(&self) -> usize {
        self.per_relation.iter().map(|r| r.inserted).sum()
    }

    /// Total rows that never made it in (duplicates + abandoned).
    pub fn dropped(&self) -> usize {
        self.per_relation
            .iter()
            .map(|r| r.duplicates + r.abandoned)
            .sum()
    }
}

/// Generates `rows_per_relation` tuples per relation (fewer when key
/// collisions make a row impossible after a bounded number of retries).
/// Convenience wrapper over [`generate_database_with_stats`] for callers
/// that only need the instance.
pub fn generate_database(
    schema: &Arc<Schema>,
    rows_per_relation: usize,
    seed: u64,
) -> GroundInstance {
    generate_database_with_stats(schema, rows_per_relation, seed).0
}

/// Like [`generate_database`], but also reports per-relation counts of
/// inserted, duplicate, and abandoned rows, so callers see the true
/// database size rather than silently losing rows to key-collision retry
/// exhaustion or missing foreign-key parents.
pub fn generate_database_with_stats(
    schema: &Arc<Schema>,
    rows_per_relation: usize,
    seed: u64,
) -> (GroundInstance, GenStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GroundInstance::new(Arc::clone(schema));
    let mut stats = GenStats {
        requested_per_relation: rows_per_relation,
        per_relation: vec![RelGenStats::default(); schema.relations().len()],
    };

    // Topological order: parents before children.
    let order = topo_order(schema);

    for rel in order {
        let relation = schema.relation(rel);
        let arity = relation.arity();
        let fks: Vec<_> = schema
            .foreign_keys()
            .iter()
            .filter(|fk| fk.child == rel)
            .collect();
        let tally = &mut stats.per_relation[rel.index()];
        'rows: for _ in 0..rows_per_relation {
            for _attempt in 0..16 {
                let mut tuple: Vec<Option<Value>> = vec![None; arity];
                // Foreign-key columns: sample a parent row.
                let mut fk_ok = true;
                for fk in &fks {
                    let parents: Vec<Vec<Value>> =
                        db.rows(fk.parent).cloned().collect();
                    if parents.is_empty() {
                        fk_ok = false;
                        break;
                    }
                    let p = &parents[rng.gen_range(0..parents.len())];
                    for (c, pa) in fk.child_attrs.iter().zip(&fk.parent_attrs) {
                        tuple[*c] = Some(p[*pa].clone());
                    }
                }
                if !fk_ok {
                    // No parent rows can ever appear later in this loop
                    // (parents are filled before children), so the row is
                    // lost for good.
                    tally.abandoned += 1;
                    continue 'rows;
                }
                for (i, cell) in tuple.iter_mut().enumerate() {
                    if cell.is_none() {
                        *cell = Some(random_value(
                            &mut rng,
                            relation.attrs[i].domain_type,
                            relation.attrs[i].domain.0,
                        ));
                    }
                }
                let tuple: Vec<Value> = tuple.into_iter().map(Option::unwrap).collect();
                // Respect keys: skip rows that collide on a key with a
                // different payload.
                let collides = schema.keys_of(rel).any(|key| {
                    db.rows(rel).any(|existing| {
                        key.attrs.iter().all(|k| existing[*k] == tuple[*k])
                            && existing != &tuple
                    })
                });
                if collides {
                    continue;
                }
                if db.insert(rel, tuple) {
                    tally.inserted += 1;
                } else {
                    tally.duplicates += 1;
                }
                continue 'rows;
            }
            // All retries collided on a key with differing payloads.
            tally.abandoned += 1;
        }
    }
    (db, stats)
}

// The index is the relation id being placed; iterating `placed` by value
// would lose the id <-> position correspondence the two arrays share.
#[allow(clippy::needless_range_loop)]
fn topo_order(schema: &Arc<Schema>) -> Vec<RelId> {
    let n = schema.relations().len();
    let mut order: Vec<RelId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Simple Kahn-style loop; FK cycles (rare) fall back to declaration
    // order for the remainder.
    for _round in 0..n {
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let rel = RelId(i as u32);
            let ready = schema
                .foreign_keys()
                .iter()
                .filter(|fk| fk.child == rel && fk.parent != rel)
                .all(|fk| placed[fk.parent.index()]);
            if ready {
                placed[i] = true;
                order.push(rel);
            }
        }
    }
    for i in 0..n {
        if !placed[i] {
            order.push(RelId(i as u32));
        }
    }
    order
}

fn random_value(rng: &mut StdRng, ty: DomainType, domain_tag: u32) -> Value {
    match ty {
        DomainType::Int => Value::Int(rng.gen_range(1..50)),
        DomainType::Real => Value::real((rng.gen_range(4..80) as f64) / 4.0),
        DomainType::Text => {
            // Small pools per domain make joins actually join.
            let pool = [
                "Eve Edwards",
                "Eve Mercer",
                "Bryan",
                "Richard",
                "The Edge",
                "Tadim",
                "Satisfaction",
                "Erdinger",
                "Amstel",
                "Corona",
            ];
            let pick = pool[rng.gen_range(0..pool.len())];
            Value::str(format!("{pick} {domain_tag}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_schema::DomainType;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation("Bar", &[("name", DomainType::Text), ("addr", DomainType::Text)])
                .relation("Beer", &[("name", DomainType::Text), ("brewer", DomainType::Text)])
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .key("Bar", &["name"])
                .key("Beer", &["name"])
                .key("Serves", &["bar", "beer"])
                .foreign_key("Serves", &["bar"], "Bar", &["name"])
                .foreign_key("Serves", &["beer"], "Beer", &["name"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn generated_database_satisfies_constraints() {
        let s = schema();
        for seed in 0..5 {
            let db = generate_database(&s, 8, seed);
            assert!(db.satisfies_foreign_keys(), "seed {seed}");
            assert!(db.satisfies_keys(), "seed {seed}");
            assert!(db.num_tuples() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = schema();
        let a = generate_database(&s, 6, 42);
        let b = generate_database(&s, 6, 42);
        assert_eq!(a, b);
        let c = generate_database(&s, 6, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn parents_generated_before_children() {
        let s = schema();
        let db = generate_database(&s, 4, 7);
        let serves = s.rel_id("Serves").unwrap();
        // Some Serves rows must exist (parents were available).
        assert!(db.rows(serves).count() > 0);
    }

    #[test]
    fn stats_account_for_every_requested_row() {
        let s = schema();
        for seed in 0..8 {
            let (db, stats) = generate_database_with_stats(&s, 10, seed);
            assert_eq!(stats.requested_per_relation, 10);
            assert_eq!(stats.per_relation.len(), s.relations().len());
            // Every requested row is classified exactly once.
            for tally in &stats.per_relation {
                assert_eq!(tally.inserted + tally.duplicates + tally.abandoned, 10, "seed {seed}");
            }
            // The reported size is the true size.
            assert_eq!(stats.inserted(), db.num_tuples(), "seed {seed}");
            for (i, tally) in stats.per_relation.iter().enumerate() {
                assert_eq!(
                    tally.inserted,
                    db.rows(RelId(i as u32)).count(),
                    "seed {seed} rel {i}"
                );
            }
        }
    }

    #[test]
    fn key_exhaustion_is_surfaced_not_silent() {
        // A single-attribute key over Int (values drawn from 1..50): asking
        // for 200 rows must exhaust the key space, and the generator has to
        // say so rather than silently returning a smaller database.
        let s = Arc::new(
            Schema::builder()
                .relation("K", &[("id", DomainType::Int), ("v", DomainType::Int)])
                .key("K", &["id"])
                .build()
                .unwrap(),
        );
        let (db, stats) = generate_database_with_stats(&s, 200, 1);
        let t = &stats.per_relation[0];
        assert!(t.abandoned > 0, "expected abandoned rows, got {t:?}");
        assert_eq!(t.inserted + t.duplicates + t.abandoned, 200);
        assert_eq!(stats.inserted(), db.num_tuples());
        assert!(db.num_tuples() < 200);
        assert!(db.satisfies_keys());
        // And the thin wrapper returns the identical instance.
        assert_eq!(generate_database(&s, 200, 1), db);
    }
}
