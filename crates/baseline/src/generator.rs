//! Schema-driven random database generation.
//!
//! Relations are filled in foreign-key topological order; child columns
//! sample existing parent keys, so generated databases always satisfy the
//! declared foreign keys, and key constraints are respected by retrying
//! colliding rows.

use std::sync::Arc;

use cqi_instance::GroundInstance;
use cqi_schema::{DomainType, RelId, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `rows_per_relation` tuples per relation (fewer when key
/// collisions make a row impossible after a bounded number of retries).
pub fn generate_database(
    schema: &Arc<Schema>,
    rows_per_relation: usize,
    seed: u64,
) -> GroundInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GroundInstance::new(Arc::clone(schema));

    // Topological order: parents before children.
    let n = schema.relations().len();
    let order = topo_order(schema);
    let _ = n;

    for rel in order {
        let relation = schema.relation(rel);
        let arity = relation.arity();
        let fks: Vec<_> = schema
            .foreign_keys()
            .iter()
            .filter(|fk| fk.child == rel)
            .collect();
        'rows: for _ in 0..rows_per_relation {
            for _attempt in 0..16 {
                let mut tuple: Vec<Option<Value>> = vec![None; arity];
                // Foreign-key columns: sample a parent row.
                let mut fk_ok = true;
                for fk in &fks {
                    let parents: Vec<Vec<Value>> =
                        db.rows(fk.parent).cloned().collect();
                    if parents.is_empty() {
                        fk_ok = false;
                        break;
                    }
                    let p = &parents[rng.gen_range(0..parents.len())];
                    for (c, pa) in fk.child_attrs.iter().zip(&fk.parent_attrs) {
                        tuple[*c] = Some(p[*pa].clone());
                    }
                }
                if !fk_ok {
                    continue 'rows;
                }
                for (i, cell) in tuple.iter_mut().enumerate() {
                    if cell.is_none() {
                        *cell = Some(random_value(
                            &mut rng,
                            relation.attrs[i].domain_type,
                            relation.attrs[i].domain.0,
                        ));
                    }
                }
                let tuple: Vec<Value> = tuple.into_iter().map(Option::unwrap).collect();
                // Respect keys: skip rows that collide on a key with a
                // different payload.
                let collides = schema.keys_of(rel).any(|key| {
                    db.rows(rel).any(|existing| {
                        key.attrs.iter().all(|k| existing[*k] == tuple[*k])
                            && existing != &tuple
                    })
                });
                if collides {
                    continue;
                }
                db.insert(rel, tuple);
                continue 'rows;
            }
        }
    }
    db
}

#[allow(clippy::needless_range_loop)]
fn topo_order(schema: &Arc<Schema>) -> Vec<RelId> {
    let n = schema.relations().len();
    let mut order: Vec<RelId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Simple Kahn-style loop; FK cycles (rare) fall back to declaration
    // order for the remainder.
    for _round in 0..n {
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let rel = RelId(i as u32);
            let ready = schema
                .foreign_keys()
                .iter()
                .filter(|fk| fk.child == rel && fk.parent != rel)
                .all(|fk| placed[fk.parent.index()]);
            if ready {
                placed[i] = true;
                order.push(rel);
            }
        }
    }
    for i in 0..n {
        if !placed[i] {
            order.push(RelId(i as u32));
        }
    }
    order
}

fn random_value(rng: &mut StdRng, ty: DomainType, domain_tag: u32) -> Value {
    match ty {
        DomainType::Int => Value::Int(rng.gen_range(1..50)),
        DomainType::Real => Value::real((rng.gen_range(4..80) as f64) / 4.0),
        DomainType::Text => {
            // Small pools per domain make joins actually join.
            let pool = [
                "Eve Edwards",
                "Eve Mercer",
                "Bryan",
                "Richard",
                "The Edge",
                "Tadim",
                "Satisfaction",
                "Erdinger",
                "Amstel",
                "Corona",
            ];
            let pick = pool[rng.gen_range(0..pool.len())];
            Value::str(format!("{pick} {domain_tag}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_schema::DomainType;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation("Bar", &[("name", DomainType::Text), ("addr", DomainType::Text)])
                .relation("Beer", &[("name", DomainType::Text), ("brewer", DomainType::Text)])
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .key("Bar", &["name"])
                .key("Beer", &["name"])
                .key("Serves", &["bar", "beer"])
                .foreign_key("Serves", &["bar"], "Bar", &["name"])
                .foreign_key("Serves", &["beer"], "Beer", &["name"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn generated_database_satisfies_constraints() {
        let s = schema();
        for seed in 0..5 {
            let db = generate_database(&s, 8, seed);
            assert!(db.satisfies_foreign_keys(), "seed {seed}");
            assert!(db.satisfies_keys(), "seed {seed}");
            assert!(db.num_tuples() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = schema();
        let a = generate_database(&s, 6, 42);
        let b = generate_database(&s, 6, 42);
        assert_eq!(a, b);
        let c = generate_database(&s, 6, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn parents_generated_before_children() {
        let s = schema();
        let db = generate_database(&s, 4, 7);
        let serves = s.rel_id("Serves").unwrap();
        // Some Serves rows must exist (parents were available).
        assert!(db.rows(serves).count() > 0);
    }
}
