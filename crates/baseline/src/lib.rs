//! # cqi-baseline
//!
//! The comparison systems the paper evaluates against (§2, §5.2):
//!
//! * [`ratest`] — a RATest-style [41] *instance-based* counterexample: given
//!   a correct and a wrong query plus a (generated) database, find a minimal
//!   sub-instance on which the two queries disagree. Unlike c-instances,
//!   the result is one fully ground example tied to a specific database.
//! * [`cosette`] — a Cosette-style [15] single counterexample *without* any
//!   input database: take the first consistent c-instance of the difference
//!   query and ground it.
//! * [`generator`] — a schema-driven random database generator (the "randomly
//!   generated testing database instance" RATest is run on).

#![deny(unsafe_code)]

pub mod cosette;
pub mod generator;
pub mod ratest;

pub use cosette::cosette;
pub use generator::{generate_database, generate_database_with_stats, GenStats, RelGenStats};
pub use ratest::{minimal_counterexample, ratest, ratest_directed};
