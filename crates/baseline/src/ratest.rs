//! RATest-style minimal ground counterexamples [41].
//!
//! RATest explains why a student query is wrong by exhibiting a *small*
//! sub-instance of a given database on which the wrong and correct queries
//! disagree ("the emphasis is on the cardinality of the generated
//! counterexample"). We reproduce its observable behaviour: greedy tuple
//! removal from a (generated) database while the disagreement persists —
//! the comparison target of the paper's case study (§5.2).

use std::sync::Arc;

use cqi_drc::Query;
use cqi_eval::evaluate;
use cqi_instance::GroundInstance;
use cqi_schema::Schema;

use crate::generator::generate_database;

/// Do the two queries disagree on `db`?
fn differ(q1: &Query, q2: &Query, db: &GroundInstance) -> bool {
    evaluate(q1, db) != evaluate(q2, db)
}

/// Greedily minimizes `db` while `q1` and `q2` still disagree; the result
/// is a 1-minimal counterexample (removing any single tuple reconciles the
/// queries). Returns `None` if the queries agree on `db`.
pub fn minimal_counterexample(
    q1: &Query,
    q2: &Query,
    db: &GroundInstance,
) -> Option<GroundInstance> {
    if !differ(q1, q2, db) {
        return None;
    }
    let mut cur = db.clone();
    loop {
        let mut shrunk = false;
        for (rel, tuple) in cur.all_tuples() {
            let mut cand = cur.clone();
            cand.remove(rel, &tuple);
            if differ(q1, q2, &cand) {
                cur = cand;
                shrunk = true;
            }
        }
        if !shrunk {
            return Some(cur);
        }
    }
}

/// Directed variant: finds a minimal sub-instance satisfying `plus − minus`
/// (i.e. `plus` returns a tuple that `minus` does not) — the direction the
/// paper's counterexamples present to students (the *wrong* query's extra
/// answers).
pub fn ratest_directed(
    schema: &Arc<Schema>,
    plus: &Query,
    minus: &Query,
    max_seeds: u64,
) -> Option<GroundInstance> {
    let diff = plus.difference(minus).ok()?;
    let witnesses = |db: &GroundInstance| cqi_eval::satisfies(&diff, db);
    for seed in 0..max_seeds {
        let rows = 4 + 2 * (seed as usize % 8);
        let db = generate_database(schema, rows, seed);
        if !witnesses(&db) {
            continue;
        }
        // Greedy 1-minimization preserving the directed difference.
        let mut cur = db;
        loop {
            let mut shrunk = false;
            for (rel, tuple) in cur.all_tuples() {
                let mut cand = cur.clone();
                cand.remove(rel, &tuple);
                if witnesses(&cand) {
                    cur = cand;
                    shrunk = true;
                }
            }
            if !shrunk {
                return Some(cur);
            }
        }
    }
    None
}

/// The full RATest pipeline: generate random databases (growing with each
/// failed seed) until the queries disagree, then minimize.
pub fn ratest(
    schema: &Arc<Schema>,
    q1: &Query,
    q2: &Query,
    max_seeds: u64,
) -> Option<GroundInstance> {
    for seed in 0..max_seeds {
        let rows = 4 + 2 * (seed as usize % 8);
        let db = generate_database(schema, rows, seed);
        if let Some(ce) = minimal_counterexample(q1, q2, &db) {
            return Some(ce);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_schema::{DomainType, Value};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation("Bar", &[("name", DomainType::Text), ("addr", DomainType::Text)])
                .relation("Beer", &[("name", DomainType::Text), ("brewer", DomainType::Text)])
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .key("Bar", &["name"])
                .key("Beer", &["name"])
                .key("Serves", &["bar", "beer"])
                .foreign_key("Serves", &["bar"], "Bar", &["name"])
                .foreign_key("Serves", &["beer"], "Beer", &["name"])
                .build()
                .unwrap(),
        )
    }

    /// Correct: bars serving the cheapest offer of a beer; wrong: bars
    /// serving at any non-maximal price. They disagree whenever ≥ 3
    /// distinct prices exist for one beer.
    fn queries(s: &Arc<Schema>) -> (Query, Query) {
        let correct = parse_query(
            s,
            "{ (x1, b1) | exists p1 . Serves(x1, b1, p1) and forall x2, p2 (not Serves(x2, b1, p2) or p1 <= p2) }",
        )
        .unwrap();
        let wrong = parse_query(
            s,
            "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 < p2 }",
        )
        .unwrap();
        (correct, wrong)
    }

    #[test]
    fn finds_and_minimizes_counterexample() {
        let s = schema();
        let (correct, wrong) = queries(&s);
        let ce = ratest(&s, &correct, &wrong, 30).expect("counterexample exists");
        // 1-minimality: removing any tuple reconciles the queries.
        for (rel, tuple) in ce.all_tuples() {
            let mut cand = ce.clone();
            cand.remove(rel, &tuple);
            assert!(
                !differ(&correct, &wrong, &cand),
                "not minimal: could drop {tuple:?}"
            );
        }
        assert!(differ(&correct, &wrong, &ce));
    }

    #[test]
    fn agreeing_queries_have_no_counterexample() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) }").unwrap();
        let db = generate_database(&s, 6, 1);
        assert!(minimal_counterexample(&q, &q, &db).is_none());
    }

    #[test]
    fn hand_built_counterexample_minimizes_to_three_serves() {
        // Three prices for one beer: the minimal counterexample for the
        // max-vs-not-min confusion needs all three Serves rows.
        let s = schema();
        let (correct, wrong) = queries(&s);
        let mut db = GroundInstance::new(Arc::clone(&s));
        db.insert_named("Beer", &["APA".into(), "SN".into()]);
        for (bar, price) in [("RM", 2.25), ("RR", 2.75), ("Tadim", 3.5)] {
            db.insert_named("Bar", &[bar.into(), "a".into()]);
            db.insert_named("Serves", &[bar.into(), "APA".into(), Value::real(price)]);
        }
        // Noise that minimization must strip.
        db.insert_named("Beer", &["Noise".into(), "NN".into()]);
        let ce = minimal_counterexample(&correct, &wrong, &db).unwrap();
        let serves = s.rel_id("Serves").unwrap();
        assert_eq!(ce.rows(serves).count(), 3);
        let beer = s.rel_id("Beer").unwrap();
        assert!(ce.rows(beer).count() <= 1, "noise beer removed");
    }
}
