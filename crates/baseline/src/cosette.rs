//! Cosette-style single counterexamples [15]: decide whether two queries
//! differ — and exhibit one ground witness — using only the queries and the
//! schema (no input database). We reuse the chase with `max_results = 1`
//! and ground the first consistent c-instance.

use std::time::Duration;

use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_drc::{Query, QueryError, SyntaxTree};
use cqi_instance::{ground_instance, GroundInstance};

/// Searches for a ground instance on which `q1` and `q2` differ (in either
/// direction). `None` means none was found within the limit/timeout — *not*
/// a proof of equivalence (the problem is undecidable, Proposition 3.1).
pub fn cosette(
    q1: &Query,
    q2: &Query,
    limit: usize,
    timeout: Duration,
) -> Result<Option<GroundInstance>, QueryError> {
    for (a, b) in [(q1, q2), (q2, q1)] {
        let diff = a.difference(b)?;
        let tree = SyntaxTree::new(diff);
        let cfg = ChaseConfig::with_limit(limit)
            .timeout(timeout)
            .enforce_keys(true)
            .max_results(1);
        let sol = run_variant(&tree, Variant::ConjAdd, &cfg);
        if let Some(si) = sol.instances.first() {
            if let Some(g) = ground_instance(&si.inst, true) {
                return Ok(Some(g));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqi_drc::parse_query;
    use cqi_eval::evaluate;
    use cqi_schema::{DomainType, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "Serves",
                    &[
                        ("bar", DomainType::Text),
                        ("beer", DomainType::Text),
                        ("price", DomainType::Real),
                    ],
                )
                .relation(
                    "Likes",
                    &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
                )
                .same_domain(("Serves", "beer"), ("Likes", "beer"))
                .key("Serves", &["bar", "beer"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn distinguishes_inequivalent_queries() {
        let s = schema();
        let q1 = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let q2 = parse_query(
            &s,
            "{ (b1) | exists d1 (Likes(d1, b1)) and exists x1, p1 (Serves(x1, b1, p1)) }",
        )
        .unwrap();
        let ce = cosette(&q1, &q2, 6, Duration::from_secs(20))
            .unwrap()
            .expect("q1 ⊋ q2");
        assert_ne!(evaluate(&q1, &ce), evaluate(&q2, &ce));
    }

    #[test]
    fn identical_queries_yield_nothing() {
        let s = schema();
        let q = parse_query(&s, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
        let ce = cosette(&q, &q, 5, Duration::from_secs(10)).unwrap();
        assert!(ce.is_none());
    }

    /// Found by the `cqi-fuzz` differential campaign: a projected wildcard
    /// and an explicit existential are the same query, so no counterexample
    /// may exist. The difference `q1 − q2` normalizes to
    /// `Likes(d1, *) ∧ ∀b ¬Likes(d1, b)` — before Tree-SAT's universal
    /// ranged over don't-care cells, the chase accepted its padding row and
    /// cosette produced a witness both queries agree on.
    #[test]
    fn wildcard_vs_exists_has_no_counterexample() {
        let s = schema();
        let q1 = parse_query(&s, "{ (d1) | Likes(d1, *) }").unwrap();
        let q2 = parse_query(&s, "{ (d1) | exists b1 (Likes(d1, b1)) }").unwrap();
        let ce = cosette(&q1, &q2, 4, Duration::from_secs(10)).unwrap();
        if let Some(ce) = &ce {
            assert_eq!(evaluate(&q1, ce), evaluate(&q2, ce), "{ce}");
            panic!("cosette produced a counterexample for equivalent queries:\n{ce}");
        }
    }
}
