//! # cqi — Understanding Queries by Conditional Instances
//!
//! Umbrella crate for the workspace reproducing *Understanding Queries by
//! Conditional Instances* (SIGMOD 2022). It re-exports every layer under a
//! stable module path, so downstream users depend on one crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`schema`] | `cqi-schema` | values, domains, relations, constraints |
//! | [`solver`] | `cqi-solver` | DPLL(T)-lite condition solver |
//! | [`runtime`] | `cqi-runtime` | work-stealing frontier scheduler + concurrent iso-dedupe |
//! | [`instance`] | `cqi-instance` | c-instances, consistency, isomorphism, grounding |
//! | [`drc`] | `cqi-drc` | DRC parser, normalizer, pretty-printer, syntax trees |
//! | [`eval`] | `cqi-eval` | ground evaluation of DRC queries |
//! | [`core`] | `cqi-core` | the chase: six variants computing minimal c-solutions |
//! | [`datasets`] | `cqi-datasets` | Beers + TPC-H schemas and workloads |
//! | [`baseline`] | `cqi-baseline` | RATest/Cosette-style baselines |
//! | [`sql`] | `cqi-sql` | SQL→DRC front-end |
//! | [`bench`] | `cqi-bench` | experiment harness (`reproduce` binary) |
//!
//! The repo-level integration tests (`tests/`) and runnable examples
//! (`examples/`) are hosted by this crate.
//!
//! ```
//! use std::sync::Arc;
//! use cqi::prelude::*;
//!
//! let schema = Arc::new(
//!     Schema::builder()
//!         .relation("Likes", &[("drinker", DomainType::Text), ("beer", DomainType::Text)])
//!         .build()
//!         .unwrap(),
//! );
//! let q = parse_query(&schema, "{ (b1) | exists d1 (Likes(d1, b1)) }").unwrap();
//! let sol = run_variant(&SyntaxTree::new(q), Variant::ConjAdd, &ChaseConfig::with_limit(4));
//! assert!(!sol.instances.is_empty());
//! ```

pub use cqi_baseline as baseline;
pub use cqi_bench as bench;
pub use cqi_core as core;
pub use cqi_datasets as datasets;
pub use cqi_drc as drc;
pub use cqi_eval as eval;
pub use cqi_instance as instance;
pub use cqi_runtime as runtime;
pub use cqi_schema as schema;
pub use cqi_sql as sql;
pub use cqi_solver as solver;

/// The names most programs start from, in one import.
pub mod prelude {
    pub use cqi_core::{run_variant, ChaseConfig, Variant};
    pub use cqi_drc::{parse_query, Query, SyntaxTree};
    pub use cqi_instance::{CInstance, Cond};
    pub use cqi_schema::{DomainType, Schema, Value};
    pub use cqi_solver::{Lit, NullId, Problem, SolverOp};
}
