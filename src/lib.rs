//! # cqi — Understanding Queries by Conditional Instances
//!
//! Umbrella crate for the workspace reproducing *Understanding Queries by
//! Conditional Instances* (SIGMOD 2022). It re-exports every layer under a
//! stable module path, so downstream users depend on one crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`schema`] | `cqi-schema` | values, domains, relations, constraints |
//! | [`solver`] | `cqi-solver` | DPLL(T)-lite condition solver |
//! | [`obs`] | `cqi-obs` | metrics registry + span tracing (Perfetto export, text exposition) |
//! | [`runtime`] | `cqi-runtime` | work-stealing frontier scheduler + concurrent iso-dedupe |
//! | [`instance`] | `cqi-instance` | c-instances, consistency, isomorphism, grounding |
//! | [`drc`] | `cqi-drc` | DRC parser, normalizer, pretty-printer, syntax trees |
//! | [`eval`] | `cqi-eval` | ground evaluation of DRC queries |
//! | [`core`] | `cqi-core` | the chase: six variants computing minimal c-solutions |
//! | [`datasets`] | `cqi-datasets` | Beers + TPC-H schemas and workloads |
//! | [`baseline`] | `cqi-baseline` | RATest/Cosette-style baselines |
//! | [`sql`] | `cqi-sql` | SQL→DRC front-end |
//! | [`bench`] | `cqi-bench` | experiment harness (`reproduce` binary) |
//! | [`fuzz`] | `cqi-fuzz` | differential fuzzing campaign (`cqi-fuzz` binary) |
//!
//! The repo-level integration tests (`tests/`) and runnable examples
//! (`examples/`) are hosted by this crate.
//!
//! ## Quickstart: the streaming explanation API
//!
//! A [`Session`](core::Session) bundles a schema, a tuned
//! [`ChaseConfig`](core::ChaseConfig), and warm solver caches; an
//! [`ExplainRequest`](core::ExplainRequest) takes a query in *any*
//! front-end (DRC text, SQL, or a pre-parsed tree) plus per-request
//! `limit`/`deadline`/`cancel`; `explain` streams
//! [`AcceptedInstance`](core::AcceptedInstance)s while the chase runs.
//!
//! ```
//! use std::sync::Arc;
//! use cqi::prelude::*;
//!
//! let schema = Arc::new(
//!     Schema::builder()
//!         .relation("Likes", &[("drinker", DomainType::Text), ("beer", DomainType::Text)])
//!         .build()
//!         .unwrap(),
//! );
//! let session = Session::new(schema);
//! // DRC and SQL front-ends land in the same pipeline:
//! let mut stream = session
//!     .explain(ExplainRequest::sql("SELECT l.beer FROM Likes l").limit(4))
//!     .unwrap();
//! for accepted in stream.by_ref() {
//!     // arrives while the chase is still driving; ship it to the user
//!     let _json = accepted.to_json();
//! }
//! let sol = stream.collect(); // the batch CSolution, status included
//! assert!(sol.interrupted.is_none() && !sol.instances.is_empty());
//! ```
//!
//! ### Migrating from `run_variant`
//!
//! `run_variant(&tree, variant, &cfg)` still works unchanged (it is now a
//! thin wrapper over a one-shot session); the session form is
//! `session.explain_collect(ExplainRequest::tree(&tree).variant(variant))`.
//! See [`core::session`] for the full mapping table.

#![deny(unsafe_code)]

pub use cqi_baseline as baseline;
pub use cqi_bench as bench;
pub use cqi_core as core;
pub use cqi_datasets as datasets;
pub use cqi_drc as drc;
pub use cqi_eval as eval;
pub use cqi_fuzz as fuzz;
pub use cqi_instance as instance;
pub use cqi_obs as obs;
pub use cqi_runtime as runtime;
pub use cqi_schema as schema;
pub use cqi_sql as sql;
pub use cqi_solver as solver;

/// The names most programs start from, in one import — centered on the
/// streaming [`Session`](cqi_core::Session) API, with the batch
/// `run_variant` kept for existing code.
pub mod prelude {
    pub use cqi_core::{
        run_variant, AcceptedInstance, CSolution, CancelToken, ChaseConfig, ExplainRequest,
        Interrupted, QueryInput, Session, SolutionStream, Variant,
    };
    pub use cqi_drc::{parse_query, Query, SyntaxTree};
    pub use cqi_instance::{CInstance, Cond};
    pub use cqi_schema::{DomainType, Schema, Value};
    pub use cqi_solver::{Lit, NullId, Problem, SolverOp};
    pub use cqi_sql::sql_to_drc;
}
