//! Grading assistant: the paper's educational use case (§1, first bullet).
//!
//! An instructor has a correct SQL solution; a student submits a wrong SQL
//! query. The assistant (1) lowers both to DRC through the SQL front-end,
//! (2) checks them against a generated database, (3) produces the RATest
//! -style concrete counterexample, and (4) produces the c-instance
//! counterexamples that *explain* the difference abstractly — without
//! revealing the correct query.
//!
//! Run with: `cargo run --release --example grading_assistant`

use std::time::Duration;

use cqi_baseline::ratest;
use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_datasets::beers_schema;
use cqi_drc::SyntaxTree;
use cqi_sql::sql_to_drc;

fn main() {
    let schema = beers_schema();

    // Instructor's solution (Fig. 9a): highest-price bars for beers liked
    // by a drinker with first name Eve.
    let solution_sql = "SELECT s.bar, s.beer FROM Likes l, Serves s \
                        WHERE l.drinker LIKE 'Eve %' AND l.beer = s.beer \
                        AND NOT EXISTS (SELECT * FROM Serves \
                                        WHERE beer = s.beer AND price > s.price)";
    // Student's submission (Fig. 9b).
    let student_sql = "SELECT S1.bar, S1.beer FROM Likes L, Serves S1, Serves S2 \
                       WHERE L.drinker LIKE 'Eve%' AND L.beer = S1.beer \
                       AND L.beer = S2.beer AND S1.price > S2.price";

    println!("solution SQL: {solution_sql}\nstudent SQL:  {student_sql}\n");

    let solution = sql_to_drc(&schema, solution_sql).expect("solution lowers to DRC");
    let student = sql_to_drc(&schema, student_sql).expect("submission lowers to DRC");

    // RATest-style: one concrete counterexample from a random database.
    match ratest(&schema, &solution, &student, 60) {
        Some(ce) => {
            println!("-- RATest-style concrete counterexample (minimal sub-instance):");
            print!("{ce}");
            println!(
                "solution returns {:?}\nstudent  returns {:?}\n",
                cqi_eval::evaluate(&solution, &ce),
                cqi_eval::evaluate(&student, &ce)
            );
        }
        None => println!("-- queries agree on every generated database\n"),
    }

    // C-instance counterexamples: all the distinct ways the submission is
    // wrong, as abstract instances with conditions.
    let diff = student.difference(&solution).expect("same output arity");
    let tree = SyntaxTree::new(diff);
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(30));
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);
    println!(
        "-- {} abstract counterexample(s) for (student − solution):",
        sol.num_coverages()
    );
    for (i, si) in sol.instances.iter().enumerate() {
        println!("c-instance #{} (size {}):", i + 1, si.size());
        print!("{}", si.inst);
        println!("   ↳ hint: the conditions above are the *minimal* reason the answers differ.");
    }
}
