//! Coverage-driven test-data generation: the paper's third use case (§1) —
//! "generate a suite of test instances for a complex query such that
//! together they exercise all parts of the query".
//!
//! Each c-instance in the minimal c-solution is grounded into one concrete
//! test database; the union of their coverages tells us exactly which
//! syntax-tree leaves the suite exercises, and re-evaluating the query
//! confirms every generated database is a true positive.
//!
//! Run with: `cargo run --release --example coverage_testgen`

use std::time::Duration;

use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_datasets::beers_schema;
use cqi_drc::{parse_query, Coverage, SyntaxTree};
use cqi_instance::ground_instance;

fn main() {
    let schema = beers_schema();

    // A workload query with genuinely different execution paths: beers
    // either premium-priced everywhere or liked by somebody.
    let q = parse_query(
        &schema,
        "{ (b1) | exists r1 (Beer(b1, r1)) and \
         (exists d1 (Likes(d1, b1)) or \
          exists x1, p1 (Serves(x1, b1, p1) and p1 > 8.0)) }",
    )
    .expect("query parses")
    .with_label("workload");

    let tree = SyntaxTree::new(q.clone());
    let cfg = ChaseConfig::with_limit(8)
        .enforce_keys(true)
        .timeout(Duration::from_secs(20));
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);

    println!(
        "query has {} leaves; generating one test database per coverage...\n",
        tree.num_leaves()
    );
    let mut exercised = Coverage::new();
    for (i, si) in sol.instances.iter().enumerate() {
        let Some(db) = ground_instance(&si.inst, true) else {
            continue;
        };
        exercised.extend(si.coverage.iter().copied());
        println!(
            "-- test #{}: exercises leaves {:?}",
            i + 1,
            si.coverage.iter().map(|l| l.0).collect::<Vec<_>>()
        );
        print!("{db}");
        let result = cqi_eval::evaluate(&q, &db);
        assert!(!result.is_empty(), "generated test must satisfy the query");
        println!("   query result on this test: {result:?}\n");
    }
    println!(
        "suite coverage: {}/{} leaves exercised",
        exercised.len(),
        tree.num_leaves()
    );
    for (id, atom) in tree.leaves() {
        let mark = if exercised.contains(&id) { "✓" } else { "✗" };
        println!("  {mark} L{}: {}", id.0, cqi_drc::pretty::atom_to_string(&q, atom));
    }
}
