//! Streaming quickstart: watch abstract counterexamples arrive live.
//!
//! The paper's §5.1 point is that conditional instances are useful *as
//! they arrive* — a user debugging a query wants the first counterexample
//! in milliseconds, not the whole minimal c-solution after the search
//! finishes. This example builds the running example's difference query
//! `QB − QA` directly in SQL (`EXCEPT`), opens a [`Session`], and prints
//! every accepted instance the moment the chase emits it, under a
//! deadline.
//!
//! Run with: `cargo run --release --example streaming`

use std::time::Duration;

use cqi::prelude::*;
use cqi_datasets::beers_schema;

fn main() {
    let session = Session::new(beers_schema()).config(
        ChaseConfig::with_limit(10).enforce_keys(true),
    );

    // QB (wrong: non-lowest price, LIKE lost its space) EXCEPT QA
    // (correct): every answer is a way the two queries differ.
    let sql = "SELECT S1.bar, S1.beer FROM Likes L \
               JOIN Serves S1 ON L.beer = S1.beer \
               JOIN Serves S2 ON L.beer = S2.beer \
               WHERE L.drinker LIKE 'Eve%' AND S1.price > S2.price \
               EXCEPT \
               SELECT s.bar, s.beer FROM Likes l, Serves s \
               WHERE l.drinker LIKE 'Eve %' AND l.beer = s.beer \
               AND NOT EXISTS (SELECT * FROM Serves \
                               WHERE beer = s.beer AND price > s.price)";

    let request = ExplainRequest::sql(sql)
        .variant(Variant::DisjAdd)
        .deadline(Duration::from_secs(20));

    println!("streaming c-instances for QB − QA (deadline 20s)...\n");
    let mut stream = session.explain(request).expect("the SQL compiles");
    for accepted in stream.by_ref() {
        println!(
            "[{:7.1} ms] instance #{} (size {}, covers {} leaf(s)):",
            accepted.accepted_at.as_secs_f64() * 1e3,
            accepted.ordinal + 1,
            accepted.inst.size(),
            accepted.coverage.len(),
        );
        print!("{}", accepted.inst);
        println!();
    }

    // Recover the classic batch result — minimal c-solution + status.
    let sol = stream.collect();
    match sol.interrupted {
        None => println!("drive complete."),
        Some(Interrupted::Deadline) => println!("deadline hit — partial results above."),
        Some(Interrupted::Cancelled) => println!("cancelled — partial results above."),
    }
    println!(
        "{} accepted, {} distinct coverages, first instance after {:?}.",
        sol.raw_accepted,
        sol.num_coverages(),
        sol.time_to_first().unwrap_or_default(),
    );
    // The engine-stats one-liner (waves, memo hit rates, dedupe traffic).
    println!("engine: {}", sol.stats);

    // One line of the service-response rendering.
    if let Some(si) = sol.instances.first() {
        println!("\nfirst minimal instance as JSON:\n{}", si.inst.to_json());
    }
}
