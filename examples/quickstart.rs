//! Quickstart: the paper's running example end to end.
//!
//! We define the Beers schema, write the correct query QA and the wrong
//! query QB (Fig. 2), build the difference `QB − QA`, and ask the chase for
//! a minimal c-solution — the set of abstract counterexamples that
//! characterizes *every* way the two queries can differ. One of them is the
//! paper's I1 (Fig. 6). Finally we ground a c-instance into a concrete
//! counterexample like Fig. 1's K0.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_datasets::beers_schema;
use cqi_drc::{parse_query, SyntaxTree};
use cqi_instance::ground_instance;

fn main() {
    let schema = beers_schema();

    // The correct query (Fig. 2a): bars serving, at the highest price, a
    // beer liked by a drinker whose first name is "Eve".
    let qa = parse_query(
        &schema,
        "{ (x1, b1) | exists d1, p1 . Serves(x1, b1, p1) and Likes(d1, b1) \
         and d1 like 'Eve %' \
         and forall x2, p2 (not Serves(x2, b1, p2) or p1 >= p2) }",
    )
    .expect("QA parses")
    .with_label("QA");

    // The wrong query (Fig. 2b): beers served at a *non-lowest* price, and
    // the LIKE pattern lost its space.
    let qb = parse_query(
        &schema,
        "{ (x1, b1) | exists d1, p1, x2, p2 . Serves(x1, b1, p1) and Likes(d1, b1) \
         and d1 like 'Eve%' and Serves(x2, b1, p2) and p1 > p2 }",
    )
    .expect("QB parses")
    .with_label("QB");

    let diff = qb.difference(&qa).expect("compatible queries");
    println!("difference query: {}", cqi_drc::pretty::query_to_string(&diff));

    let tree = SyntaxTree::new(diff);
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(30));
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);

    println!(
        "\nminimal c-solution: {} c-instance(s), {} accepted before minimization",
        sol.num_coverages(),
        sol.raw_accepted
    );
    for (i, si) in sol.instances.iter().enumerate() {
        println!(
            "\n-- c-instance #{} (size {}, covers {} of {} leaves):",
            i + 1,
            si.size(),
            si.coverage.len(),
            tree.num_leaves()
        );
        print!("{}", si.inst);
    }

    // Ground the first c-instance into a concrete counterexample.
    if let Some(si) = sol.instances.first() {
        let k = ground_instance(&si.inst, true).expect("consistent instance grounds");
        println!("\n-- one concrete counterexample from its possible worlds:");
        print!("{k}");
        println!(
            "QB returns {:?}, QA returns {:?}",
            cqi_eval::evaluate(&qb, &k),
            cqi_eval::evaluate(&qa, &k)
        );
    }
}
