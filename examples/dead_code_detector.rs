//! Dead-code detection in queries: the paper's second use case (§1) — "if
//! there are no instances that can trigger some part of a query, it may be
//! possible to simplify the query to remove 'dead code' that logically
//! contradicts other necessary conditions".
//!
//! We chase a query whose one branch is self-contradictory; the leaves that
//! stay uncovered by *every* c-instance in the solution are the dead code.
//!
//! Run with: `cargo run --release --example dead_code_detector`

use std::time::Duration;

use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_datasets::beers_schema;
use cqi_drc::{parse_query, Coverage, SyntaxTree};

fn main() {
    let schema = beers_schema();

    // The second disjunct demands that *no* Beer row exists for b1 while
    // the query also requires Beer(b1, r1) — dead code that no data can
    // ever trigger.
    let q = parse_query(
        &schema,
        "{ (b1) | exists r1 (Beer(b1, r1)) and \
         (exists d1 (Likes(d1, b1)) or not Beer(b1, *)) }",
    )
    .expect("query parses")
    .with_label("suspicious");

    println!("analysing: {}\n", cqi_drc::pretty::query_to_string(&q));

    let tree = SyntaxTree::new(q.clone());
    let cfg = ChaseConfig::with_limit(8)
        .enforce_keys(true)
        .timeout(Duration::from_secs(20));
    // The Add variant actively seeds every leaf, so an uncovered leaf after
    // this run is a strong dead-code signal.
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);

    let mut covered = Coverage::new();
    for si in &sol.instances {
        covered.extend(si.coverage.iter().copied());
    }
    println!(
        "{} c-instance(s) found; leaf report:",
        sol.instances.len()
    );
    let mut dead = Vec::new();
    for (id, atom) in tree.leaves() {
        let reachable = covered.contains(&id);
        println!(
            "  {} L{}: {}",
            if reachable { "live" } else { "DEAD" },
            id.0,
            cqi_drc::pretty::atom_to_string(&q, atom)
        );
        if !reachable {
            dead.push(id);
        }
    }
    if dead.is_empty() {
        println!("\nno dead code detected.");
    } else {
        println!(
            "\n{} leaf/leaves can never be satisfied together with the rest of \
             the query — candidates for removal.",
            dead.len()
        );
    }
    assert!(
        !dead.is_empty(),
        "the contradictory branch must be reported as dead"
    );
}
