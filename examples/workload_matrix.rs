//! Workload test matrix: §1's "given a set of workload queries, we can
//! generate test instances where a given subset of queries are satisfied
//! but others are not".
//!
//! For three workload queries we enumerate all 2³ satisfaction patterns and
//! synthesize one test database per achievable pattern, then verify each
//! database against every query.
//!
//! Run with: `cargo run --release --example workload_matrix`

use std::time::Duration;

use cqi_core::{generate_test_matrix, ChaseConfig};
use cqi_datasets::beers_schema;
use cqi_drc::parse_query;

fn main() {
    let schema = beers_schema();
    let queries = [
        parse_query(&schema, "{ (b1) | exists d1 (Likes(d1, b1)) }")
            .unwrap()
            .with_label("liked"),
        parse_query(
            &schema,
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1) and p1 > 5.0) }",
        )
        .unwrap()
        .with_label("premium"),
        parse_query(
            &schema,
            "{ (d1) | exists x1, t1 (Frequents(d1, x1, t1)) }",
        )
        .unwrap()
        .with_label("regular"),
    ];
    let refs: Vec<&cqi_drc::Query> = queries.iter().collect();

    let cfg = ChaseConfig::with_limit(8)
        .enforce_keys(true)
        .timeout(Duration::from_secs(10));
    let matrix = generate_test_matrix(&refs, &cfg).expect("workload combines");

    println!(
        "achievable satisfaction patterns: {}/{}\n",
        matrix.len(),
        1 << queries.len()
    );
    for (pattern, db) in &matrix {
        let marks: Vec<String> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let want = pattern & (1 << i) != 0;
                let got = cqi_eval::satisfies(q, db);
                assert_eq!(want, got, "pattern {pattern:b} query {}", q.label);
                format!("{}{}", if got { "+" } else { "-" }, q.label)
            })
            .collect();
        println!("-- pattern {:03b}: {}", pattern, marks.join(" "));
        print!("{db}");
    }
}
