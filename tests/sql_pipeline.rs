//! Integration test: SQL front-end → DRC → chase → grounding, plus
//! SQL-vs-DRC semantic agreement on the running example's data.

use std::time::Duration;

use cqi_core::{cq_neg_universal_solution, run_variant, ChaseConfig, Variant};
use cqi_datasets::{beers_k0, beers_schema};
use cqi_drc::SyntaxTree;
use cqi_instance::ground_instance;
use cqi_sql::sql_to_drc;

#[test]
fn fig9_sql_queries_agree_with_fig2_drc_on_k0() {
    let s = beers_schema();
    let k0 = beers_k0(&s);
    let qa_sql = sql_to_drc(
        &s,
        "SELECT s.bar, s.beer FROM Likes l, Serves s \
         WHERE l.drinker LIKE 'Eve %' AND l.beer = s.beer \
         AND NOT EXISTS (SELECT * FROM Serves WHERE beer = s.beer AND price > s.price)",
    )
    .unwrap();
    let qb_sql = sql_to_drc(
        &s,
        "SELECT S1.bar, S1.beer FROM Likes L, Serves S1, Serves S2 \
         WHERE L.drinker LIKE 'Eve%' AND L.beer = S1.beer AND L.beer = S2.beer \
         AND S1.price > S2.price",
    )
    .unwrap();
    // QA returns Tadim only; QB returns Tadim and Restaurante Raffaele.
    let ra = cqi_eval::evaluate(&qa_sql, &k0);
    assert_eq!(ra.len(), 1);
    assert!(ra.contains(&vec!["Tadim".into(), "American Pale Ale".into()]));
    let rb = cqi_eval::evaluate(&qb_sql, &k0);
    assert_eq!(rb.len(), 2);
}

#[test]
fn sql_except_chases_to_counterexamples() {
    // EXCEPT builds the difference query directly in SQL.
    let s = beers_schema();
    let diff = sql_to_drc(
        &s,
        "SELECT S1.bar, S1.beer FROM Likes L, Serves S1, Serves S2 \
         WHERE L.drinker LIKE 'Eve%' AND L.beer = S1.beer AND L.beer = S2.beer \
         AND S1.price > S2.price \
         EXCEPT \
         SELECT s.bar, s.beer FROM Likes l, Serves s \
         WHERE l.drinker LIKE 'Eve %' AND l.beer = s.beer \
         AND NOT EXISTS (SELECT * FROM Serves WHERE beer = s.beer AND price > s.price)",
    )
    .unwrap();
    let tree = SyntaxTree::new(diff.clone());
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(60));
    let sol = run_variant(&tree, Variant::DisjEO, &cfg);
    assert!(!sol.instances.is_empty(), "the SQL EXCEPT query is satisfiable");
    let g = ground_instance(&sol.instances[0].inst, true).unwrap();
    assert!(cqi_eval::satisfies(&diff, &g));
}

#[test]
fn sql_cq_neg_takes_the_fast_path() {
    // QB is a conjunctive query: Proposition 3.1(1) applies and the
    // universal solution is a single c-instance covering all leaves.
    let s = beers_schema();
    let qb = sql_to_drc(
        &s,
        "SELECT S1.bar, S1.beer FROM Likes L, Serves S1, Serves S2 \
         WHERE L.drinker LIKE 'Eve%' AND L.beer = S1.beer AND L.beer = S2.beer \
         AND S1.price > S2.price",
    )
    .unwrap();
    assert!(qb.is_cq_neg());
    let tree = SyntaxTree::new(qb);
    let sol = cq_neg_universal_solution(&tree, true).expect("CQ¬ fast path applies");
    assert_eq!(sol.instances.len(), 1);
    assert_eq!(
        sol.instances[0].coverage.len(),
        tree.num_leaves(),
        "single instance covers every leaf"
    );
    // And it agrees with the chase run on the same tree.
    let cfg = ChaseConfig::with_limit(14)
        .enforce_keys(true)
        .timeout(Duration::from_secs(30));
    let chased = run_variant(&tree, Variant::ConjAdd, &cfg);
    assert!(chased
        .coverages()
        .any(|c| c.len() == tree.num_leaves()));
}

#[test]
fn explicit_join_on_chases_like_the_comma_form() {
    // `JOIN ... ON` and the comma-product form must produce the same
    // minimal c-solution, and the joined query must chase to satisfying,
    // groundable instances.
    let s = beers_schema();
    let joined = sql_to_drc(
        &s,
        "SELECT S1.bar, S1.beer FROM Likes L \
         JOIN Serves S1 ON L.beer = S1.beer \
         JOIN Serves S2 ON L.beer = S2.beer \
         WHERE S1.price > S2.price",
    )
    .unwrap();
    let comma = sql_to_drc(
        &s,
        "SELECT S1.bar, S1.beer FROM Likes L, Serves S1, Serves S2 \
         WHERE L.beer = S1.beer AND L.beer = S2.beer AND S1.price > S2.price",
    )
    .unwrap();
    let cfg = ChaseConfig::with_limit(8)
        .enforce_keys(true)
        .timeout(Duration::from_secs(30));
    let a = run_variant(&SyntaxTree::new(joined.clone()), Variant::ConjAdd, &cfg);
    let b = run_variant(&SyntaxTree::new(comma), Variant::ConjAdd, &cfg);
    assert!(!a.instances.is_empty());
    assert_eq!(a.num_coverages(), b.num_coverages());
    let g = ground_instance(&a.instances[0].inst, true).unwrap();
    assert!(!cqi_eval::evaluate(&joined, &g).is_empty());
}

#[test]
fn qualified_star_pipeline() {
    // SELECT s.* exposes exactly Serves' columns; the chase still finds
    // counterexample instances for it.
    let s = beers_schema();
    let q = sql_to_drc(
        &s,
        "SELECT s.* FROM Serves s JOIN Likes l ON l.beer = s.beer \
         WHERE s.price > 3.0",
    )
    .unwrap();
    assert_eq!(q.out_vars.len(), 3);
    let cfg = ChaseConfig::with_limit(6)
        .enforce_keys(true)
        .timeout(Duration::from_secs(30));
    let sol = run_variant(&SyntaxTree::new(q.clone()), Variant::DisjEO, &cfg);
    assert!(!sol.instances.is_empty());
    let g = ground_instance(&sol.instances[0].inst, true).unwrap();
    assert!(cqi_eval::satisfies(&q, &g));
}

#[test]
fn user_study_q2_wrong_vs_correct() {
    // Table 3's Q2: the wrong query selects beers at 'Edge'; the correct
    // query selects drinkers frequenting 'The Edge' not liking 'Erdinger'.
    let s = beers_schema();
    let wrong = sql_to_drc(
        &s,
        "SELECT DISTINCT S.beer FROM Serves S, Likes L \
         WHERE S.bar = 'Edge' AND S.beer = L.beer AND L.drinker <> 'Richard'",
    )
    .unwrap();
    let correct = cqi_drc::parse_query(
        &s,
        "{ (d1) | exists t1 (Frequents(d1, 'The Edge', t1)) and exists a1 (Drinker(d1, a1)) \
         and not Likes(d1, 'Erdinger') }",
    )
    .unwrap();
    let diff = wrong.difference(&correct).unwrap();
    let tree = SyntaxTree::new(diff.clone());
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(60));
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);
    assert!(!sol.instances.is_empty(), "the two queries differ");
    let g = ground_instance(&sol.instances[0].inst, true).unwrap();
    assert_ne!(
        cqi_eval::evaluate(&wrong, &g),
        cqi_eval::evaluate(&correct, &g)
    );
}
