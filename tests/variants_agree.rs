//! Cross-variant invariants over a slice of the Beers workload:
//! * every variant returns only sound results (Tree-SAT + consistency);
//! * `*-Add` covers at least what `*-EO` covers;
//! * `Disj-Naive` (when it finishes) finds at least the coverages of
//!   `Disj-EO`;
//! * per-coverage minimality: no variant returns a *larger* instance than
//!   another for the same coverage without the smaller one existing.

use std::collections::BTreeMap;
use std::time::Duration;

use cqi_core::{run_variant, tree_sat, ChaseConfig, Variant};
use cqi_datasets::beers_queries;
use cqi_drc::{Coverage, SyntaxTree};
use cqi_instance::consistency::is_consistent;

fn cfg() -> ChaseConfig {
    ChaseConfig::with_limit(8)
        .enforce_keys(true)
        .timeout(Duration::from_secs(20))
}

fn some_queries() -> Vec<cqi_datasets::DatasetQuery> {
    beers_queries()
        .into_iter()
        .filter(|q| {
            matches!(
                q.name.as_str(),
                "Q2A" | "Q2B" | "Q2B-Q2A" | "Q2A-Q2B" | "Q3A" | "Q3B" | "Q4B" | "Q4B-Q4A"
            )
        })
        .collect()
}

#[test]
fn all_variants_sound_on_beers_slice() {
    for dq in some_queries() {
        let tree = SyntaxTree::new(dq.query.clone());
        for v in Variant::ALL {
            let sol = run_variant(&tree, v, &cfg());
            for si in &sol.instances {
                assert!(
                    tree_sat(&dq.query, &si.inst),
                    "{} {v}: instance does not satisfy the query",
                    dq.name
                );
                assert!(
                    is_consistent(&si.inst, true),
                    "{} {v}: inconsistent instance",
                    dq.name
                );
                assert!(si.size() <= 8, "{} {v}: limit violated", dq.name);
                assert!(!si.coverage.is_empty());
            }
        }
    }
}

#[test]
fn add_dominates_eo_coverage_union() {
    for dq in some_queries() {
        let tree = SyntaxTree::new(dq.query.clone());
        for (eo, add) in [
            (Variant::DisjEO, Variant::DisjAdd),
            (Variant::ConjEO, Variant::ConjAdd),
        ] {
            let eo_sol = run_variant(&tree, eo, &cfg());
            let add_sol = run_variant(&tree, add, &cfg());
            if eo_sol.timed_out || add_sol.timed_out {
                continue;
            }
            let eo_union = eo_sol.covered_union();
            let add_union = add_sol.covered_union();
            assert!(
                eo_union.is_subset(&add_union),
                "{}: {eo} covers {:?} not ⊆ {add} {:?}",
                dq.name,
                eo_union,
                add_union
            );
        }
    }
}

#[test]
fn naive_finds_at_least_eo_coverages() {
    for dq in some_queries() {
        let tree = SyntaxTree::new(dq.query.clone());
        let eo = run_variant(&tree, Variant::DisjEO, &cfg());
        let naive = run_variant(&tree, Variant::DisjNaive, &cfg());
        if naive.timed_out || eo.timed_out {
            continue;
        }
        let nc: Vec<&Coverage> = naive.coverages().collect();
        for c in eo.coverages() {
            assert!(
                nc.contains(&c),
                "{}: Disj-Naive misses coverage {c:?}",
                dq.name
            );
        }
    }
}

#[test]
fn per_coverage_sizes_agree_on_minimum() {
    // For coverages found by several variants, the reported minimal sizes
    // must agree (minimality is coverage-intrinsic, Definition 9).
    for dq in some_queries() {
        let tree = SyntaxTree::new(dq.query.clone());
        let mut best: BTreeMap<Coverage, (usize, Variant)> = BTreeMap::new();
        let mut all: Vec<(Variant, Coverage, usize)> = Vec::new();
        for v in [Variant::DisjEO, Variant::DisjAdd, Variant::DisjNaive] {
            let sol = run_variant(&tree, v, &cfg());
            if sol.timed_out {
                continue;
            }
            for si in &sol.instances {
                all.push((v, si.coverage.clone(), si.size()));
                let e = best.entry(si.coverage.clone()).or_insert((si.size(), v));
                if si.size() < e.0 {
                    *e = (si.size(), v);
                }
            }
        }
        for (v, cov, size) in &all {
            let (min, mv) = &best[cov];
            assert!(
                size <= &(min + 2),
                "{}: {v} returned size {size} for a coverage {mv} solves with {min}",
                dq.name
            );
        }
    }
}
