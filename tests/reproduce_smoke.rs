//! Smoke test for the experiment harness: exercises the `reproduce table1`
//! and `reproduce cqneg` code paths in-process with tiny limits, asserting
//! the output *structures* are populated. This keeps the bench harness from
//! bit-rotting without paying for a full figure reproduction in CI.

use std::time::Duration;

use cqi_core::{cq_neg_universal_solution, run_variant, ChaseConfig, Variant};
use cqi_datasets::{beers_queries, beers_schema, dataset_stats, tpch_queries};
use cqi_drc::SyntaxTree;
use cqi_sql::sql_to_drc;

/// The `reproduce table1` path: dataset statistics for both workloads.
#[test]
fn table1_dataset_stats_are_populated() {
    for (name, qs, paper_count) in [
        ("Beers", beers_queries(), 35),
        ("TPC-H", tpch_queries(), 28),
    ] {
        let s = dataset_stats(&qs);
        assert_eq!(s.num_queries, paper_count, "{name}: query count");
        assert!(s.mean_atoms > 0.0, "{name}: mean atoms");
        assert!(s.mean_quantifiers > 0.0, "{name}: mean quantifiers");
        assert!(s.mean_height > 0.0, "{name}: mean height");
        assert!(
            s.paper_mean_quantifiers > 0.0 && s.paper_mean_height > 0.0,
            "{name}: paper-side means"
        );
    }
}

/// The `reproduce cqneg` path: Proposition 3.1(1) universal solutions for a
/// hand-written DRC CQ¬ query and for the SQL front-end's lowering of the
/// paper's QB.
#[test]
fn cqneg_universal_solutions_nonempty() {
    let schema = beers_schema();
    let drc = cqi_drc::parse_query(
        &schema,
        "{ (b) | exists x, d, a . Beer(b, x) and Drinker(d, a) and not Likes(d, b) }",
    )
    .unwrap();
    let sol = cq_neg_universal_solution(&SyntaxTree::new(drc), true)
        .expect("CQ¬ query has a poly-time universal solution");
    assert!(!sol.instances.is_empty(), "DRC universal solution is empty");
    for si in &sol.instances {
        assert!(si.inst.num_tuples() > 0, "instance with no tuples");
        assert!(!format!("{}", si.inst).is_empty(), "display is empty");
    }

    let sql = sql_to_drc(
        &schema,
        "SELECT S1.bar, S1.beer FROM Likes L, Serves S1, Serves S2 \
         WHERE L.drinker LIKE 'Eve%' AND L.beer = S1.beer AND L.beer = S2.beer \
         AND S1.price > S2.price",
    )
    .unwrap();
    let sol = cq_neg_universal_solution(&SyntaxTree::new(sql), true)
        .expect("SQL-lowered CQ¬ query has a universal solution");
    assert!(!sol.instances.is_empty(), "SQL universal solution is empty");
}

/// A tiny end-to-end run through the same harness configuration surface the
/// figures use (`ChaseConfig` with limit + timeout), pinned to one fast
/// query so the whole test stays in the hundreds of milliseconds.
#[test]
fn harness_chase_config_path_runs() {
    let qs = beers_queries();
    let dq = qs.iter().find(|q| q.name == "Q2A").expect("Q2A exists");
    let cfg = ChaseConfig::with_limit(4)
        .enforce_keys(true)
        .timeout(Duration::from_secs(5));
    let sol = run_variant(&SyntaxTree::new(dq.query.clone()), Variant::ConjAdd, &cfg);
    assert!(
        !sol.instances.is_empty(),
        "Q2A should produce at least one c-instance at limit 4"
    );
}
