//! Repo-level smoke test of the differential fuzzing campaign: one full
//! rotation of the variant × config matrix stays clean, the fault-injection
//! self-test catches and shrinks an injected soundness bug, and the report
//! artifact is well-formed JSON.

use cqi::fuzz::driver::{sweep, CaseOutcome, SweepOptions};
use cqi::fuzz::report;
use cqi::fuzz::spec::Mutation;
use cqi::fuzz::GenKnobs;
use cqi::instance::json_well_formed;

/// 48 cases = all 8 config cells × all 6 chase variants exactly once.
#[test]
fn one_matrix_rotation_is_clean() {
    let summary = sweep(&SweepOptions {
        cases: 48,
        master_seed: 0,
        knobs: GenKnobs::default(),
        mutation: None,
        deadline_ms: 5000,
    });
    assert_eq!(summary.divergences(), 0, "{}", report::render(&summary));
    assert_eq!(summary.passed() + summary.skipped(), 48);
    assert!(summary.checked() > 0, "sweep never exercised the oracle");
    let json = report::render(&summary);
    assert!(json_well_formed(&json), "{json}");
}

/// The acceptance-criterion self-test at the integration level: a
/// deliberately broken comparison is caught as a divergence and shrunk to a
/// ≤ 3-relation, ≤ 4-atom repro that renders as runnable DDL + DRC.
#[test]
fn injected_bug_caught_and_shrunk() {
    let summary = sweep(&SweepOptions {
        cases: 48,
        master_seed: 0,
        knobs: GenKnobs::default(),
        mutation: Some(Mutation::NegateFirstCmp),
        deadline_ms: 5000,
    });
    assert!(summary.divergences() > 0, "injected bug went unnoticed");
    let mut saw_repro = false;
    for c in &summary.cases {
        if let CaseOutcome::Diverged { shrunk, .. } = &c.outcome {
            assert!(shrunk.spec.schema.relations.len() <= 3);
            assert!(shrunk.spec.query.num_atoms() <= 4);
            let ddl = shrunk.spec.schema.to_ddl();
            assert!(ddl.starts_with("Schema::builder()") && ddl.ends_with(".unwrap()"));
            assert!(shrunk.spec.drc().starts_with('{'), "{}", shrunk.spec.drc());
            saw_repro = true;
        }
    }
    assert!(saw_repro);
}
