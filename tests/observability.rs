//! Integration tests for the observability layer (`cqi-obs`): tracing
//! must never change what the engine computes, traced runs must yield a
//! valid Chrome trace with the promised request → wave → solver nesting,
//! the phase breakdown must be conservative (sum ≤ wall time on one
//! thread), and the metrics exposition must parse line-by-line.

use std::sync::{Arc, Mutex, MutexGuard};

use cqi::prelude::*;
use proptest::prelude::*;

/// Span capture is process-global (`begin_capture` clears every thread's
/// ring), so tests that trace must not overlap — the test harness runs
/// `#[test]` fns on multiple threads of one process.
fn capture_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "Serves",
                &[
                    ("bar", DomainType::Text),
                    ("beer", DomainType::Text),
                    ("price", DomainType::Real),
                ],
            )
            .relation(
                "Likes",
                &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
            )
            .same_domain(("Serves", "beer"), ("Likes", "beer"))
            .key("Serves", &["bar", "beer"])
            .build()
            .unwrap(),
    )
}

const QUERIES: [&str; 4] = [
    "{ (b1) | exists d1 (Likes(d1, b1)) }",
    "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
    "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
    "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
];

/// Streams one request and renders every accepted instance; the byte
/// string is the determinism witness.
fn streamed(
    s: &Arc<Schema>,
    tree: &SyntaxTree,
    variant: Variant,
    limit: usize,
    threads: usize,
    trace: bool,
) -> (Vec<String>, CSolution) {
    let cfg = ChaseConfig::with_limit(limit)
        .threads(threads)
        .parallel_min_frontier(2);
    let session = Session::new(Arc::clone(s)).config(cfg);
    let mut stream = session
        .explain(ExplainRequest::tree(tree).variant(variant).trace(trace))
        .unwrap();
    let items: Vec<String> = stream
        .by_ref()
        .map(|a| format!("{}@{:?}", a.inst, a.coverage))
        .collect();
    (items, stream.collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole's safety claim: turning tracing on changes nothing
    /// about the accepted stream — byte-identical items, same order, on
    /// both the sequential and the parallel scheduler.
    #[test]
    fn accepted_stream_is_byte_identical_with_tracing_on(
        qi in any::<u64>(),
        vi in any::<u64>(),
        li in any::<u64>(),
    ) {
        let _guard = capture_lock();
        let s = schema();
        let src = QUERIES[(qi as usize) % QUERIES.len()];
        let variant = Variant::ALL[(vi as usize) % Variant::ALL.len()];
        let limit = 4 + (li as usize) % 3; // 4..=6
        let tree = SyntaxTree::new(parse_query(&s, src).unwrap());

        for threads in [1usize, 4] {
            let (off_items, off_sol) = streamed(&s, &tree, variant, limit, threads, false);
            let (on_items, on_sol) = streamed(&s, &tree, variant, limit, threads, true);
            prop_assert_eq!(&off_items, &on_items,
                "tracing must not change the stream: {} {} threads={}",
                src, variant, threads);
            prop_assert_eq!(off_sol.raw_accepted, on_sol.raw_accepted);
            prop_assert!(off_sol.trace.is_none(), "untraced run must carry no trace");
            prop_assert!(on_sol.trace.is_some(), "traced run must carry a trace");
        }
    }
}

#[test]
fn traced_solution_carries_valid_chrome_trace() {
    let _guard = capture_lock();
    let s = schema();
    let tree = SyntaxTree::new(parse_query(&s, QUERIES[1]).unwrap());
    for threads in [1usize, 4] {
        let (_, sol) = streamed(&s, &tree, Variant::ConjAdd, 6, threads, true);
        let trace = sol.trace.as_deref().expect("traced run returns a trace");
        assert!(
            cqi::instance::json_well_formed(trace),
            "threads={threads}: trace must be well-formed JSON"
        );
        // The span tree the ISSUE promises: request root, wave level,
        // solver leaves, plus Perfetto thread-name metadata.
        for needle in [
            "\"name\": \"explain\"",
            "\"name\": \"root_job\"",
            "\"cat\": \"solver\"",
            "\"name\": \"thread_name\"",
        ] {
            assert!(trace.contains(needle), "threads={threads}: missing {needle}");
        }
        // Complete events only (plus "M" metadata): every span is ph=X.
        assert!(trace.contains("\"ph\": \"X\""));
    }
}

#[test]
fn phase_breakdown_sums_to_at_most_wall_time_single_threaded() {
    let _guard = capture_lock();
    let s = schema();
    let tree = SyntaxTree::new(parse_query(&s, QUERIES[1]).unwrap());
    let (_, sol) = streamed(&s, &tree, Variant::ConjAdd, 6, 1, true);
    let phase_total = sol.stats.phase_total_ns();
    assert!(phase_total > 0, "a traced run must attribute some phase time");
    assert!(
        phase_total <= sol.total_time.as_nanos() as u64,
        "leaf-only attribution must keep the breakdown conservative: \
         {} phase ns vs {} total ns",
        phase_total,
        sol.total_time.as_nanos()
    );
    // The breakdown reaches the one-line summary too.
    let line = format!("{}", sol.stats);
    assert!(line.contains("phases"), "traced stats display the breakdown: {line}");
}

#[test]
fn untraced_runs_attribute_no_phase_time() {
    let _guard = capture_lock();
    let s = schema();
    let tree = SyntaxTree::new(parse_query(&s, QUERIES[0]).unwrap());
    let (_, sol) = streamed(&s, &tree, Variant::ConjAdd, 4, 1, false);
    assert_eq!(sol.stats.phase_total_ns(), 0);
    assert!(sol.trace.is_none());
}

/// One line of Prometheus text exposition: `name{labels} value` or
/// `name value`, where the value parses as a number.
fn exposition_line_ok(line: &str) -> bool {
    let rest = match line.find('{') {
        Some(open) => {
            let Some(close) = line.rfind('}') else { return false };
            if !name_ok(&line[..open]) || close < open {
                return false;
            }
            &line[close + 1..]
        }
        None => {
            let Some(sp) = line.find(' ') else { return false };
            if !name_ok(&line[..sp]) {
                return false;
            }
            &line[sp..]
        }
    };
    let v = rest.trim();
    v.parse::<f64>().is_ok() || v == "+Inf"
}

fn name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[test]
fn metrics_exposition_parses_line_by_line() {
    let _guard = capture_lock();
    // Any completed run publishes into the global registry.
    let s = schema();
    let tree = SyntaxTree::new(parse_query(&s, QUERIES[1]).unwrap());
    let _ = streamed(&s, &tree, Variant::ConjAdd, 4, 1, false);

    let text = cqi::obs::global().render_text();
    assert!(!text.is_empty(), "a completed run must have published metrics");
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(exposition_line_ok(line), "bad exposition line: {line:?}");
        samples += 1;
    }
    assert!(samples > 0);
    assert!(text.contains("cqi_chase_waves_total"));
    assert!(
        text.contains("cqi_solver_memo_lookups_total{tier=\"l1\",outcome=\"hit\"}"),
        "labeled counters render as name{{k=\"v\",...}}: {text}"
    );
    // The JSON rendering of the same registry is well-formed.
    assert!(cqi::instance::json_well_formed(&cqi::obs::global().render_json()));
}
