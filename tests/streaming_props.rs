//! Property tests for the streaming explanation API: the `SolutionStream`
//! must yield the same instances in the same order as the batch API, under
//! any thread budget, and deadline/cancellation must return partial
//! results with an `Interrupted` status instead of hanging or panicking.

use std::sync::Arc;
use std::time::Duration;

use cqi::prelude::*;
use proptest::prelude::*;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "Serves",
                &[
                    ("bar", DomainType::Text),
                    ("beer", DomainType::Text),
                    ("price", DomainType::Real),
                ],
            )
            .relation(
                "Likes",
                &[("drinker", DomainType::Text), ("beer", DomainType::Text)],
            )
            .same_domain(("Serves", "beer"), ("Likes", "beer"))
            .key("Serves", &["bar", "beer"])
            .build()
            .unwrap(),
    )
}

const QUERIES: [&str; 5] = [
    "{ (b1) | exists d1 (Likes(d1, b1)) }",
    "{ (x1, b1) | exists p1, x2, p2 . Serves(x1, b1, p1) and Serves(x2, b1, p2) and p1 > p2 }",
    "{ (x1) | exists b1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 1.0)) }",
    "{ (b1) | exists x1, p1 (Serves(x1, b1, p1)) and forall d1 (not Likes(d1, b1)) }",
    "{ (d1) | exists b1 (Likes(d1, b1)) and d1 like 'Eve%' }",
];

fn pick<T: Copy>(xs: &[T], i: u64) -> T {
    xs[(i as usize) % xs.len()]
}

/// Streams one request through `Session::explain` and returns the rendered
/// item sequence plus the collected solution.
fn streamed(
    s: &Arc<Schema>,
    tree: &SyntaxTree,
    variant: Variant,
    limit: usize,
    threads: usize,
) -> (Vec<String>, CSolution) {
    let cfg = ChaseConfig::with_limit(limit)
        .threads(threads)
        .parallel_min_frontier(2);
    let session = Session::new(Arc::clone(s)).config(cfg);
    let mut stream = session
        .explain(ExplainRequest::tree(tree).variant(variant))
        .unwrap();
    let items: Vec<String> = stream
        .by_ref()
        .map(|a| format!("{}@{:?}", a.inst, a.coverage))
        .collect();
    (items, stream.collect())
}

fn render_sol(sol: &CSolution) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = sol
        .instances
        .iter()
        .map(|si| (format!("{:?}", si.coverage), format!("{}", si.inst)))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming order is byte-identical between `threads = 1` and
    /// `threads = 4`, ordinals are contiguous, the collected solution
    /// equals the batch `run_variant` result, and every minimal instance
    /// of the batch solution appeared on the stream.
    #[test]
    fn streaming_order_matches_batch_across_threads(
        qi in any::<u64>(),
        vi in any::<u64>(),
        li in any::<u64>(),
    ) {
        let s = schema();
        let src = QUERIES[(qi as usize) % QUERIES.len()];
        let variant = pick(&Variant::ALL, vi);
        let limit = 4 + (li as usize) % 3; // 4..=6
        let tree = SyntaxTree::new(parse_query(&s, src).unwrap());

        let (seq_items, seq_sol) = streamed(&s, &tree, variant, limit, 1);
        let (par_items, par_sol) = streamed(&s, &tree, variant, limit, 4);
        prop_assert_eq!(&seq_items, &par_items,
            "stream must be byte-identical across thread budgets: {} {}", src, variant);

        let batch = run_variant(&tree, variant, &ChaseConfig::with_limit(limit));
        prop_assert_eq!(render_sol(&seq_sol), render_sol(&batch),
            "collect() must recover the batch solution: {} {}", src, variant);
        prop_assert_eq!(render_sol(&par_sol), render_sol(&batch));
        prop_assert_eq!(seq_sol.raw_accepted, batch.raw_accepted);

        for si in &batch.instances {
            let rendered = format!("{}@{:?}", si.inst, si.coverage);
            prop_assert!(
                seq_items.contains(&rendered),
                "minimal instance missing from the stream: {} {} {}",
                src, variant, rendered
            );
        }
    }
}

#[test]
fn zero_deadline_interrupts_immediately_without_yielding() {
    let s = schema();
    let session = Session::new(Arc::clone(&s));
    let mut stream = session
        .explain(
            ExplainRequest::drc(QUERIES[1])
                .limit(12)
                .deadline(Duration::ZERO),
        )
        .unwrap();
    assert!(stream.next().is_none(), "deadline 0 must yield nothing");
    let sol = stream.collect();
    assert_eq!(sol.interrupted, Some(Interrupted::Deadline));
    assert!(sol.timed_out && sol.instances.is_empty());
}

#[test]
fn deadline_expiry_returns_partial_results_flagged() {
    // A deadline that can expire mid-drive: whatever instances were
    // streamed before the expiry must be exactly what collect() reports,
    // and an expired run is flagged Deadline.
    let s = schema();
    let session = Session::new(Arc::clone(&s)).config(ChaseConfig::with_limit(14));
    let mut stream = session
        .explain(ExplainRequest::drc(QUERIES[1]).deadline(Duration::from_millis(30)))
        .unwrap();
    let streamed: Vec<usize> = stream.by_ref().map(|a| a.ordinal).collect();
    let sol = stream.collect();
    // Contiguous ordinals, no loss on the channel.
    assert_eq!(streamed, (0..streamed.len()).collect::<Vec<_>>());
    if sol.interrupted.is_some() {
        assert_eq!(sol.interrupted, Some(Interrupted::Deadline));
    } else {
        // Finished inside 30 ms — fine, but then nothing may be missing.
        let batch = run_variant(
            &SyntaxTree::new(parse_query(&s, QUERIES[1]).unwrap()),
            Variant::ConjAdd,
            &ChaseConfig::with_limit(14),
        );
        assert_eq!(sol.raw_accepted, batch.raw_accepted);
    }
}

#[test]
fn cancellation_mid_drive_stops_after_the_inflight_instance() {
    // threads=1 makes this fully deterministic: the cancel fires inside
    // the acceptance callback, and the sequential scheduler polls the
    // token before expanding the next candidate — so exactly one instance
    // is accepted.
    let s = schema();
    let session = Session::new(Arc::clone(&s));
    let batch = session
        .explain_collect(ExplainRequest::drc(QUERIES[1]).limit(6))
        .unwrap();
    assert!(batch.raw_accepted > 1, "need a multi-instance workload");

    let token = CancelToken::new();
    let tok = token.clone();
    let mut streamed = 0usize;
    let sol = session
        .explain_with(
            ExplainRequest::drc(QUERIES[1]).limit(6).cancel(token),
            &mut |_| {
                streamed += 1;
                tok.cancel();
                true
            },
        )
        .unwrap();
    assert_eq!(streamed, 1);
    assert_eq!(sol.raw_accepted, 1);
    assert_eq!(sol.interrupted, Some(Interrupted::Cancelled));
    assert!(sol.raw_accepted < batch.raw_accepted);
}

#[test]
fn first_instance_arrives_before_the_drive_completes() {
    // The acceptance criterion in one assertion: stopping consumption at
    // the first instance stops the drive early, which is only possible if
    // that instance was delivered while the drive was still running.
    let s = schema();
    let session = Session::new(Arc::clone(&s));
    let batch = session
        .explain_collect(ExplainRequest::drc(QUERIES[1]).limit(6))
        .unwrap();
    let partial = session
        .explain_with(ExplainRequest::drc(QUERIES[1]).limit(6), &mut |_| false)
        .unwrap();
    assert!(
        partial.raw_accepted < batch.raw_accepted,
        "first instance must be observable before drive completion \
         ({} vs {})",
        partial.raw_accepted,
        batch.raw_accepted
    );
    // The truncated drive must not masquerade as a complete solution.
    assert_eq!(partial.interrupted, Some(Interrupted::Cancelled));
}

#[test]
fn accepted_instances_render_well_formed_json() {
    let s = schema();
    let session = Session::new(Arc::clone(&s));
    let mut n = 0;
    let sol = session
        .explain_with(ExplainRequest::drc(QUERIES[1]).limit(6), &mut |acc| {
            assert!(cqi::instance::json_well_formed(&acc.to_json()), "{}", acc.to_json());
            n += 1;
            true
        })
        .unwrap();
    assert!(n > 0);
    let j = sol.to_json();
    assert!(cqi::instance::json_well_formed(&j), "{j}");
    assert!(j.contains("\"status\": \"complete\""), "{j}");
}
