//! Property-based tests on the cross-crate invariants:
//! * solver models really satisfy the problems they answer (soundness);
//! * the order engine agrees with brute force on small integer systems;
//! * LIKE automata decisions agree with the direct matcher;
//! * NNF negation preserves ground semantics;
//! * grounded chase results satisfy their queries under ground evaluation.

use proptest::prelude::*;

use cqi_schema::{DomainType, Value};
use cqi_solver::{order, Lit, NullId, Problem, SolverOp};

// ---------- solver soundness ----------

fn arb_op() -> impl Strategy<Value = SolverOp> {
    prop_oneof![
        Just(SolverOp::Lt),
        Just(SolverOp::Le),
        Just(SolverOp::Gt),
        Just(SolverOp::Ge),
        Just(SolverOp::Eq),
        Just(SolverOp::Ne),
    ]
}

fn arb_lit(nulls: u32) -> impl Strategy<Value = Lit> {
    let ent = move |i: u32| NullId(i % nulls);
    (0..nulls, arb_op(), 0..nulls, 0i64..6).prop_map(move |(a, op, b, c)| {
        if c < 3 {
            Lit::cmp(ent(a), op, ent(b))
        } else {
            Lit::cmp(ent(a), op, Value::Int(c))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Whenever the solver answers SAT, the model it returns must satisfy
    /// every literal (the solver verifies internally; this re-checks from
    /// outside).
    #[test]
    fn solver_models_are_sound(lits in proptest::collection::vec(arb_lit(4), 1..8)) {
        let mut p = Problem::new(vec![DomainType::Int; 4]);
        for l in &lits {
            p.assert(l.clone());
        }
        if let cqi_solver::Outcome::Sat(m) = cqi_solver::solve(&p) {
            for l in &lits {
                prop_assert_eq!(m.eval_lit(l), Some(true), "lit {:?} fails", l);
            }
        }
    }

    /// The order engine agrees with brute force over a small integer box.
    #[test]
    fn order_engine_matches_bruteforce(
        edges in proptest::collection::vec((0usize..3, 0usize..3, any::<bool>()), 0..6),
        neqs in proptest::collection::vec((0usize..3, 0usize..3), 0..3),
    ) {
        let mut p = order::OrderProblem::new(3);
        p.int_class = vec![true; 3];
        // Pin the box: 0 ≤ x_i ≤ 3 via two pinned helper classes.
        for (a, b, strict) in &edges {
            p.edges.push(order::OrderEdge { from: *a, to: *b, strict: *strict });
        }
        for (a, b) in &neqs {
            if a != b {
                p.neqs.push((*a, *b));
            }
        }
        // Brute force over 0..=3 per class (solver range is unbounded, so
        // brute-force-SAT implies solver-SAT but not conversely; check that
        // direction only).
        let mut brute_sat = false;
        'outer: for x in 0..4i64 {
            for y in 0..4i64 {
                for z in 0..4i64 {
                    let v = [x as f64, y as f64, z as f64];
                    let ok_edges = edges.iter().all(|(a, b, s)| {
                        if *s { v[*a] < v[*b] } else { v[*a] <= v[*b] }
                    });
                    let ok_neqs = p.neqs.iter().all(|(a, b)| v[*a] != v[*b]);
                    if ok_edges && ok_neqs {
                        brute_sat = true;
                        break 'outer;
                    }
                }
            }
        }
        let solved = order::solve_order(&p);
        if brute_sat {
            prop_assert!(solved.is_some(), "brute force found a model but solver said unsat");
        }
        if let Some(vals) = solved {
            for (a, b, s) in &edges {
                if *s {
                    prop_assert!(vals[*a] < vals[*b]);
                } else {
                    prop_assert!(vals[*a] <= vals[*b]);
                }
            }
            for (a, b) in &p.neqs {
                prop_assert!(vals[*a] != vals[*b]);
            }
        }
    }

    /// The automata-based LIKE decision agrees with the direct matcher on
    /// random pattern/string pairs.
    #[test]
    fn like_automata_agree_with_matcher(
        pat in "[ab%_]{0,6}",
        s in "[ab]{0,6}",
    ) {
        use cqi_solver::nfa::{like_match, Alphabet, Dfa};
        let alpha = Alphabet::from_patterns([pat.as_str()]);
        let dfa = Dfa::from_pattern(&pat, &alpha);
        prop_assert_eq!(dfa.accepts(&s, &alpha), like_match(&pat, &s));
    }

    /// A satisfiable positive/negative LIKE set yields a witness that the
    /// direct matcher confirms.
    #[test]
    fn like_witnesses_verified(
        pos in proptest::collection::vec("[ab%_]{1,5}", 0..3),
        neg in proptest::collection::vec("[ab%_]{1,5}", 0..3),
    ) {
        use cqi_solver::nfa::{like_match, like_witness};
        let posr: Vec<&str> = pos.iter().map(String::as_str).collect();
        let negr: Vec<&str> = neg.iter().map(String::as_str).collect();
        if let Some(w) = like_witness(&posr, &negr) {
            for p in &posr {
                prop_assert!(like_match(p, &w));
            }
            for p in &negr {
                prop_assert!(!like_match(p, &w));
            }
        }
    }
}

// ---------- NNF semantics ----------

mod nnf {
    
    use cqi_datasets::{beers_k0, beers_schema};
    use cqi_drc::normalize::negate;
    use cqi_drc::parse_query;

    /// Double negation preserves ground evaluation on K0 for a pool of
    /// hand-picked formulas exercising ∃/∀/∧/∨ and both leaf kinds.
    #[test]
    fn double_negation_preserves_semantics() {
        let s = beers_schema();
        let k0 = beers_k0(&s);
        let sources = [
            "{ (b1) | exists d1 (Likes(d1, b1)) }",
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1) and p1 > 2.5) }",
            "{ (b1) | exists r1 (Beer(b1, r1)) and forall d1 (not Likes(d1, b1)) }",
            "{ (x1, b1) | exists p1 . Serves(x1, b1, p1) and forall x2, p2 (not Serves(x2, b1, p2) or p1 >= p2) }",
            "{ (b1) | exists x1, p1 (Serves(x1, b1, p1) and (p1 > 3.0 or p1 < 2.5)) }",
        ];
        for src in sources {
            let q = parse_query(&s, src).unwrap();
            let back = negate(negate(q.formula.clone()));
            let q2 = cqi_drc::Query::new(
                q.schema.clone(),
                q.out_vars.clone(),
                back,
                q.vars.iter().map(|v| v.name.clone()).collect(),
            )
            .unwrap();
            assert_eq!(
                cqi_eval::evaluate(&q, &k0),
                cqi_eval::evaluate(&q2, &k0),
                "{src}"
            );
        }
    }
}

// ---------- chase soundness by sampling ----------

mod chase_soundness {
    use std::time::Duration;

    use cqi_core::{run_variant, ChaseConfig, Variant};
    use cqi_datasets::beers_queries;
    use cqi_drc::SyntaxTree;
    use cqi_fuzz::check_solution;

    /// Every c-instance every variant returns grounds into a world that
    /// satisfies the query under independent ground evaluation — the same
    /// oracle the `cqi-fuzz` differential campaign applies (grounding,
    /// key consistency, `eval::satisfies`, non-empty coverage), over *all*
    /// accepted instances of every base query of the Beers workload.
    #[test]
    fn grounded_results_satisfy_queries() {
        let cfg = ChaseConfig::with_limit(6)
            .enforce_keys(true)
            .timeout(Duration::from_secs(10));
        for dq in beers_queries()
            .into_iter()
            .filter(|q| q.kind != cqi_datasets::QueryKind::Difference)
        {
            let tree = SyntaxTree::new(dq.query.clone());
            for variant in Variant::ALL {
                let sol = run_variant(&tree, variant, &cfg);
                if let Err(d) = check_solution(&dq.query, &sol, true) {
                    panic!("{} [{variant:?}]: {}: {}", dq.name, d.kind.as_str(), d.detail);
                }
            }
        }
    }

    /// The difference queries of the workload go through the same oracle:
    /// their accepted instances are exactly the witnesses that one side
    /// returns and the other does not, so an unsound acceptance here is a
    /// bogus counterexample downstream (cf. the cosette regression test).
    #[test]
    fn grounded_difference_results_satisfy_queries() {
        let cfg = ChaseConfig::with_limit(6)
            .enforce_keys(true)
            .timeout(Duration::from_secs(10));
        for dq in beers_queries()
            .into_iter()
            .filter(|q| q.kind == cqi_datasets::QueryKind::Difference)
        {
            let tree = SyntaxTree::new(dq.query.clone());
            for variant in [Variant::ConjAdd, Variant::DisjEO] {
                let sol = run_variant(&tree, variant, &cfg);
                if let Err(d) = check_solution(&dq.query, &sol, true) {
                    panic!("{} [{variant:?}]: {}: {}", dq.name, d.kind.as_str(), d.detail);
                }
            }
        }
    }
}
