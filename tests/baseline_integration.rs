//! Integration test: the baselines against the core system — RATest ground
//! counterexamples fall inside the represented worlds the chase describes,
//! and the Cosette-style mode distinguishes the workload's query pairs.

use std::time::Duration;

use cqi_baseline::{cosette, generate_database, minimal_counterexample, ratest};
use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_datasets::{beers_queries, beers_schema, user_study_queries, QueryKind};
use cqi_drc::SyntaxTree;

#[test]
fn ratest_finds_counterexamples_for_workload_pairs() {
    // Every wrong query disagrees with its standard query on some
    // generated database (that is what made them "wrong" submissions).
    let s = beers_schema();
    let qs = beers_queries();
    let mut found = 0;
    let mut tried = 0;
    for dq in qs.iter().filter(|q| q.kind == QueryKind::Wrong) {
        let std_name = format!("{}A", &dq.name[..dq.name.len() - 1]);
        let Some(std_q) = qs.iter().find(|q| q.name == std_name) else {
            continue;
        };
        tried += 1;
        if let Some(ce) = ratest(&s, &std_q.query, &dq.query, 40) {
            found += 1;
            assert_ne!(
                cqi_eval::evaluate(&std_q.query, &ce),
                cqi_eval::evaluate(&dq.query, &ce),
                "{}",
                dq.name
            );
            // 1-minimality.
            for (rel, tuple) in ce.all_tuples() {
                let mut cand = ce.clone();
                cand.remove(rel, &tuple);
                assert_eq!(
                    cqi_eval::evaluate(&std_q.query, &cand),
                    cqi_eval::evaluate(&dq.query, &cand),
                    "{}: counterexample not minimal",
                    dq.name
                );
            }
        }
    }
    assert!(
        found * 2 >= tried,
        "RATest should separate at least half the pairs ({found}/{tried})"
    );
}

#[test]
fn ratest_counterexample_is_in_some_represented_world() {
    // §5.2: "the ground instance by [41] is in the represented world of
    // the first c-instance" — the RATest counterexample must satisfy the
    // difference query, which every chase instance characterizes.
    let us = user_study_queries();
    let (qa, qb) = (&us[0].1, &us[0].2);
    let s = beers_schema();
    let ce = ratest(&s, qa, qb, 60).expect("counterexample exists");
    let diff_ab = qb.difference(qa).unwrap();
    let diff_ba = qa.difference(qb).unwrap();
    assert!(
        cqi_eval::satisfies(&diff_ab, &ce) || cqi_eval::satisfies(&diff_ba, &ce),
        "counterexample must witness one difference direction"
    );
}

#[test]
fn cosette_mode_agrees_with_chase() {
    let s = beers_schema();
    let q_all = cqi_drc::parse_query(&s, "{ (b1) | exists r1 (Beer(b1, r1)) }").unwrap();
    let q_some = cqi_drc::parse_query(
        &s,
        "{ (b1) | exists r1 (Beer(b1, r1)) and exists d1 (Likes(d1, b1)) }",
    )
    .unwrap();
    let ce = cosette(&q_all, &q_some, 6, Duration::from_secs(30))
        .unwrap()
        .expect("strict containment is witnessed");
    assert_ne!(
        cqi_eval::evaluate(&q_all, &ce),
        cqi_eval::evaluate(&q_some, &ce)
    );
}

#[test]
fn generated_databases_respect_beers_constraints() {
    let s = beers_schema();
    for seed in 0..6 {
        let db = generate_database(&s, 10, seed);
        assert!(db.satisfies_keys(), "seed {seed}");
        assert!(db.satisfies_foreign_keys(), "seed {seed}");
    }
}

#[test]
fn chase_and_ratest_agree_on_satisfiability() {
    // If the chase finds a difference instance, RATest should too (given
    // enough seeds), and vice versa for this pair.
    let us = user_study_queries();
    let (qa, qb) = (&us[0].1, &us[0].2);
    let diff = qb.difference(qa).unwrap();
    let tree = SyntaxTree::new(diff);
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(30));
    let chased = run_variant(&tree, Variant::DisjEO, &cfg);
    let s = beers_schema();
    let ground = ratest(&s, qa, qb, 60);
    assert_eq!(
        chased.instances.is_empty(),
        ground.is_none(),
        "chase and RATest disagree about whether the queries differ"
    );
}

#[test]
fn minimal_counterexample_none_for_equivalent_queries() {
    let s = beers_schema();
    let q = cqi_drc::parse_query(&s, "{ (b1) | exists r1 (Beer(b1, r1)) }").unwrap();
    let db = generate_database(&s, 8, 3);
    assert!(minimal_counterexample(&q, &q, &db).is_none());
}
