//! Integration test: the case study of §5.2 (Table 2) — the Q2 pair about
//! drinkers frequenting only bars that serve a beer they like.

use std::time::Duration;

use cqi_core::{run_variant, ChaseConfig, Variant};
use cqi_datasets::beers_schema;
use cqi_drc::{parse_query, Query, SyntaxTree};
use cqi_instance::{ground_instance, Cond};

fn q2_pair() -> (Query, Query) {
    let s = beers_schema();
    let correct = parse_query(
        &s,
        "{ (d1) | exists a1 (Drinker(d1, a1) and forall x1 (forall t1 (not Frequents(d1, x1, t1) \
         or exists b1, p1 (Serves(x1, b1, p1) and Likes(d1, b1))))) }",
    )
    .unwrap()
    .with_label("Q2A");
    let wrong = parse_query(
        &s,
        "{ (d1) | exists a1 (Drinker(d1, a1) and forall b1 ((forall t1, x1, p1 (not Frequents(d1, x1, t1) \
         or not Serves(x1, b1, p1))) or Likes(d1, b1))) }",
    )
    .unwrap()
    .with_label("Q2B");
    (correct, wrong)
}

fn solve(limit: usize) -> cqi_core::CSolution {
    let (correct, wrong) = q2_pair();
    let diff = wrong.difference(&correct).unwrap();
    let tree = SyntaxTree::new(diff);
    let cfg = ChaseConfig::with_limit(limit)
        .enforce_keys(true)
        .timeout(Duration::from_secs(90));
    run_variant(&tree, Variant::DisjAdd, &cfg)
}

#[test]
fn universal_solution_has_multiple_facets() {
    // Table 2 lists seven c-instances for Q2B − Q2A; our representation
    // differs in detail, but the solution must expose at least three
    // distinct coverages (the paper's "different perspectives").
    let sol = solve(10);
    assert!(
        sol.num_coverages() >= 3,
        "expected ≥ 3 facets, got {}",
        sol.num_coverages()
    );
}

#[test]
fn some_facet_shows_frequents_without_serves() {
    // Table 2's first/third instances: a drinker frequents a bar that
    // serves nothing — the Frequents/Serves disconnection. Concretely:
    // some returned instance has a Frequents row but no Serves row.
    let sol = solve(10);
    let s = beers_schema();
    let frequents = s.rel_id("Frequents").unwrap();
    let serves = s.rel_id("Serves").unwrap();
    assert!(
        sol.instances.iter().any(|si| {
            !si.inst.tables[frequents.index()].is_empty()
                && si.inst.tables[serves.index()].is_empty()
        }),
        "missing the Frequents-without-Serves facet"
    );
}

#[test]
fn some_facet_uses_negative_conditions() {
    // Table 2's 2nd/5th/6th instances carry ¬Frequents or ¬Likes
    // conditions.
    let sol = solve(10);
    assert!(
        sol.instances.iter().any(|si| si
            .inst
            .global
            .iter()
            .any(|c| matches!(c, Cond::NotIn { .. }))),
        "missing a facet with explicit negated relational conditions"
    );
}

#[test]
fn every_facet_is_a_true_counterexample() {
    let (correct, wrong) = q2_pair();
    let sol = solve(10);
    assert!(!sol.instances.is_empty());
    for si in &sol.instances {
        let g = ground_instance(&si.inst, true).expect("consistent");
        let cr = cqi_eval::evaluate(&correct, &g);
        let wr = cqi_eval::evaluate(&wrong, &g);
        assert_ne!(cr, wr, "facet must separate the queries:\n{g}");
    }
}

#[test]
fn ratest_ground_example_is_less_informative() {
    // §5.2's comparison: the RATest counterexample is a single ground
    // instance; the universal solution has strictly more facets than one.
    let s = beers_schema();
    let (correct, wrong) = q2_pair();
    let ce = cqi_baseline::ratest(&s, &correct, &wrong, 60)
        .expect("RATest finds a counterexample");
    assert!(ce.num_tuples() >= 2);
    let sol = solve(10);
    assert!(sol.num_coverages() > 1);
}
