//! Integration test: the paper's running example (§1, Figs. 1–7) across the
//! whole pipeline — schema, parsing, difference, chase, coverage,
//! consistency, grounding, and ground evaluation.

use std::time::Duration;

use cqi_core::{coverage_of_cinstance, run_variant, tree_sat, ChaseConfig, Variant};
use cqi_datasets::{beers_k0, beers_schema, user_study_queries};
use cqi_drc::SyntaxTree;
use cqi_instance::ground_instance;

fn qb_minus_qa() -> cqi_drc::Query {
    let us = user_study_queries();
    us[0].2.difference(&us[0].1).expect("compatible")
}

#[test]
fn k0_is_a_counterexample() {
    // Fig. 1/Example 2: K0 satisfies QB − QA with output
    // (Restaurante Raffaele, American Pale Ale).
    let schema = beers_schema();
    let diff = qb_minus_qa();
    let k0 = beers_k0(&schema);
    let res = cqi_eval::evaluate(&diff, &k0);
    assert_eq!(res.len(), 1);
    assert!(res.contains(&vec![
        "Restaurante Raffaele".into(),
        "American Pale Ale".into()
    ]));
}

#[test]
fn k0_coverage_misses_the_two_negated_drinker_leaves() {
    // Example 6/Fig. 5: all leaves except ¬Likes(d2,b1) and
    // ¬(d2 LIKE 'Eve %') are covered by K0.
    let schema = beers_schema();
    let diff = qb_minus_qa();
    let k0 = beers_k0(&schema);
    let cov = cqi_eval::coverage_of_ground(&diff, &k0);
    let total = SyntaxTree::new(diff).num_leaves();
    assert_eq!(total, 10);
    assert_eq!(cov.len(), 8);
}

#[test]
fn chase_finds_i1_shape_at_limit_10() {
    // Fig. 6: a size-10 satisfying c-instance with the ¬(d1 LIKE 'Eve %')
    // condition exists and is found by Disj-EO.
    let diff = qb_minus_qa();
    let tree = SyntaxTree::new(diff);
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(60));
    let sol = run_variant(&tree, Variant::DisjEO, &cfg);
    assert!(!sol.instances.is_empty(), "I1 should be found");
    let i1 = &sol.instances[0];
    assert_eq!(i1.size(), 10);
    let g = i1.inst.global_string();
    assert!(g.contains("Eve%"), "{g}");
    assert!(g.contains("not") && g.contains("Eve %"), "{g}");
    // I1 covers 9 of the 10 leaves: everything except ¬Likes(d2, b1)
    // (covering that one needs a second drinker, as in the paper's I2).
    assert_eq!(i1.coverage.len(), 9);
}

#[test]
fn found_instances_satisfy_and_ground_correctly() {
    // Soundness end to end: every returned c-instance satisfies the
    // difference query symbolically (Tree-SAT) *and* its grounded possible
    // world satisfies it concretely (ground evaluation).
    let us = user_study_queries();
    let (qa, qb) = (&us[0].1, &us[0].2);
    let diff = qb.difference(qa).unwrap();
    let tree = SyntaxTree::new(diff.clone());
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(60));
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);
    assert!(!sol.instances.is_empty());
    for si in &sol.instances {
        assert!(tree_sat(&diff, &si.inst));
        let g = ground_instance(&si.inst, true).expect("consistent");
        assert!(
            cqi_eval::satisfies(&diff, &g),
            "grounded world must satisfy QB − QA:\n{g}"
        );
        // And it really is a counterexample: QB and QA disagree.
        assert_ne!(cqi_eval::evaluate(qb, &g), cqi_eval::evaluate(qa, &g));
    }
}

#[test]
fn i0_shape_appears_at_limit_13() {
    // Fig. 4: the three-bar price-chain instance I0. The paper's I0 has
    // size 12; our chase validates acceptance under the current
    // homomorphism (see DESIGN.md), which makes its I0-shaped instance
    // carry one extra LIKE condition — it appears at limit 13.
    let diff = qb_minus_qa();
    let tree = SyntaxTree::new(diff);
    let cfg = ChaseConfig::with_limit(13)
        .enforce_keys(true)
        .timeout(Duration::from_secs(120));
    let sol = run_variant(&tree, Variant::DisjAdd, &cfg);
    let has_three_serves = sol.instances.iter().any(|si| {
        let serves = si.inst.schema.rel_id("Serves").unwrap();
        si.inst.tables[serves.index()].len() == 3
    });
    assert!(
        has_three_serves,
        "a three-Serves-row instance (I0's shape) should appear at limit 13; got {} instances",
        sol.instances.len()
    );
    assert!(sol.num_coverages() >= 2, "I0 and I1 have different coverages");
}

#[test]
fn coverage_is_consistent_between_definitions() {
    // The constructive c-instance coverage must be a subset of the ground
    // coverage of each grounded possible world (Definition 8: the
    // c-instance coverage is the *common* coverage of its worlds).
    let diff = qb_minus_qa();
    let tree = SyntaxTree::new(diff.clone());
    let cfg = ChaseConfig::with_limit(10)
        .enforce_keys(true)
        .timeout(Duration::from_secs(60));
    let sol = run_variant(&tree, Variant::DisjEO, &cfg);
    for si in &sol.instances {
        let sym = coverage_of_cinstance(&diff, &si.inst);
        let g = ground_instance(&si.inst, true).unwrap();
        let ground_cov = cqi_eval::coverage_of_ground(&diff, &g);
        for leaf in &sym {
            assert!(
                ground_cov.contains(leaf),
                "leaf {leaf:?} covered symbolically but not in the world:\n{g}"
            );
        }
    }
}
